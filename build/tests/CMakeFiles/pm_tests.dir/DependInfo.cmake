
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baseline_machines_test.cpp" "tests/CMakeFiles/pm_tests.dir/baseline_machines_test.cpp.o" "gcc" "tests/CMakeFiles/pm_tests.dir/baseline_machines_test.cpp.o.d"
  "/root/repo/tests/cpu_test.cpp" "tests/CMakeFiles/pm_tests.dir/cpu_test.cpp.o" "gcc" "tests/CMakeFiles/pm_tests.dir/cpu_test.cpp.o.d"
  "/root/repo/tests/earth_test.cpp" "tests/CMakeFiles/pm_tests.dir/earth_test.cpp.o" "gcc" "tests/CMakeFiles/pm_tests.dir/earth_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/pm_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/pm_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/mem_bus_test.cpp" "tests/CMakeFiles/pm_tests.dir/mem_bus_test.cpp.o" "gcc" "tests/CMakeFiles/pm_tests.dir/mem_bus_test.cpp.o.d"
  "/root/repo/tests/mem_cache_test.cpp" "tests/CMakeFiles/pm_tests.dir/mem_cache_test.cpp.o" "gcc" "tests/CMakeFiles/pm_tests.dir/mem_cache_test.cpp.o.d"
  "/root/repo/tests/mem_mesi_property_test.cpp" "tests/CMakeFiles/pm_tests.dir/mem_mesi_property_test.cpp.o" "gcc" "tests/CMakeFiles/pm_tests.dir/mem_mesi_property_test.cpp.o.d"
  "/root/repo/tests/mem_resource_test.cpp" "tests/CMakeFiles/pm_tests.dir/mem_resource_test.cpp.o" "gcc" "tests/CMakeFiles/pm_tests.dir/mem_resource_test.cpp.o.d"
  "/root/repo/tests/msg_collectives_test.cpp" "tests/CMakeFiles/pm_tests.dir/msg_collectives_test.cpp.o" "gcc" "tests/CMakeFiles/pm_tests.dir/msg_collectives_test.cpp.o.d"
  "/root/repo/tests/msg_driver_test.cpp" "tests/CMakeFiles/pm_tests.dir/msg_driver_test.cpp.o" "gcc" "tests/CMakeFiles/pm_tests.dir/msg_driver_test.cpp.o.d"
  "/root/repo/tests/net_crossbar_test.cpp" "tests/CMakeFiles/pm_tests.dir/net_crossbar_test.cpp.o" "gcc" "tests/CMakeFiles/pm_tests.dir/net_crossbar_test.cpp.o.d"
  "/root/repo/tests/net_injector_test.cpp" "tests/CMakeFiles/pm_tests.dir/net_injector_test.cpp.o" "gcc" "tests/CMakeFiles/pm_tests.dir/net_injector_test.cpp.o.d"
  "/root/repo/tests/net_link_test.cpp" "tests/CMakeFiles/pm_tests.dir/net_link_test.cpp.o" "gcc" "tests/CMakeFiles/pm_tests.dir/net_link_test.cpp.o.d"
  "/root/repo/tests/net_property_test.cpp" "tests/CMakeFiles/pm_tests.dir/net_property_test.cpp.o" "gcc" "tests/CMakeFiles/pm_tests.dir/net_property_test.cpp.o.d"
  "/root/repo/tests/net_topology_test.cpp" "tests/CMakeFiles/pm_tests.dir/net_topology_test.cpp.o" "gcc" "tests/CMakeFiles/pm_tests.dir/net_topology_test.cpp.o.d"
  "/root/repo/tests/ni_test.cpp" "tests/CMakeFiles/pm_tests.dir/ni_test.cpp.o" "gcc" "tests/CMakeFiles/pm_tests.dir/ni_test.cpp.o.d"
  "/root/repo/tests/sim_test.cpp" "tests/CMakeFiles/pm_tests.dir/sim_test.cpp.o" "gcc" "tests/CMakeFiles/pm_tests.dir/sim_test.cpp.o.d"
  "/root/repo/tests/workloads_test.cpp" "tests/CMakeFiles/pm_tests.dir/workloads_test.cpp.o" "gcc" "tests/CMakeFiles/pm_tests.dir/workloads_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pm_machines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pm_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pm_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pm_earth.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pm_msg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pm_node.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pm_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pm_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
