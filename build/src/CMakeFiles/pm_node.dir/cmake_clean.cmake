file(REMOVE_RECURSE
  "CMakeFiles/pm_node.dir/node/node.cc.o"
  "CMakeFiles/pm_node.dir/node/node.cc.o.d"
  "libpm_node.a"
  "libpm_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pm_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
