file(REMOVE_RECURSE
  "libpm_node.a"
)
