# Empty dependencies file for pm_node.
# This may be replaced when dependencies are built.
