file(REMOVE_RECURSE
  "CMakeFiles/pm_earth.dir/earth/runtime.cc.o"
  "CMakeFiles/pm_earth.dir/earth/runtime.cc.o.d"
  "libpm_earth.a"
  "libpm_earth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pm_earth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
