# Empty compiler generated dependencies file for pm_earth.
# This may be replaced when dependencies are built.
