file(REMOVE_RECURSE
  "libpm_earth.a"
)
