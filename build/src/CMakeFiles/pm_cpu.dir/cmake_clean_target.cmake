file(REMOVE_RECURSE
  "libpm_cpu.a"
)
