# Empty compiler generated dependencies file for pm_cpu.
# This may be replaced when dependencies are built.
