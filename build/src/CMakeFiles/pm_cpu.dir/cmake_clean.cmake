file(REMOVE_RECURSE
  "CMakeFiles/pm_cpu.dir/cpu/proc.cc.o"
  "CMakeFiles/pm_cpu.dir/cpu/proc.cc.o.d"
  "CMakeFiles/pm_cpu.dir/cpu/sched.cc.o"
  "CMakeFiles/pm_cpu.dir/cpu/sched.cc.o.d"
  "libpm_cpu.a"
  "libpm_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pm_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
