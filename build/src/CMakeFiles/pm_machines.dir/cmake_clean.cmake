file(REMOVE_RECURSE
  "CMakeFiles/pm_machines.dir/machines/machines.cc.o"
  "CMakeFiles/pm_machines.dir/machines/machines.cc.o.d"
  "libpm_machines.a"
  "libpm_machines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pm_machines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
