# Empty compiler generated dependencies file for pm_machines.
# This may be replaced when dependencies are built.
