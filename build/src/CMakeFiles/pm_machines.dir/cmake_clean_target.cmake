file(REMOVE_RECURSE
  "libpm_machines.a"
)
