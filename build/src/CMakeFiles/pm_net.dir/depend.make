# Empty dependencies file for pm_net.
# This may be replaced when dependencies are built.
