
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/crossbar.cc" "src/CMakeFiles/pm_net.dir/net/crossbar.cc.o" "gcc" "src/CMakeFiles/pm_net.dir/net/crossbar.cc.o.d"
  "/root/repo/src/net/injector.cc" "src/CMakeFiles/pm_net.dir/net/injector.cc.o" "gcc" "src/CMakeFiles/pm_net.dir/net/injector.cc.o.d"
  "/root/repo/src/net/topology.cc" "src/CMakeFiles/pm_net.dir/net/topology.cc.o" "gcc" "src/CMakeFiles/pm_net.dir/net/topology.cc.o.d"
  "/root/repo/src/net/transceiver.cc" "src/CMakeFiles/pm_net.dir/net/transceiver.cc.o" "gcc" "src/CMakeFiles/pm_net.dir/net/transceiver.cc.o.d"
  "/root/repo/src/ni/crc32.cc" "src/CMakeFiles/pm_net.dir/ni/crc32.cc.o" "gcc" "src/CMakeFiles/pm_net.dir/ni/crc32.cc.o.d"
  "/root/repo/src/ni/linkinterface.cc" "src/CMakeFiles/pm_net.dir/ni/linkinterface.cc.o" "gcc" "src/CMakeFiles/pm_net.dir/ni/linkinterface.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
