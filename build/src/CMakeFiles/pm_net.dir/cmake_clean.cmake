file(REMOVE_RECURSE
  "CMakeFiles/pm_net.dir/net/crossbar.cc.o"
  "CMakeFiles/pm_net.dir/net/crossbar.cc.o.d"
  "CMakeFiles/pm_net.dir/net/injector.cc.o"
  "CMakeFiles/pm_net.dir/net/injector.cc.o.d"
  "CMakeFiles/pm_net.dir/net/topology.cc.o"
  "CMakeFiles/pm_net.dir/net/topology.cc.o.d"
  "CMakeFiles/pm_net.dir/net/transceiver.cc.o"
  "CMakeFiles/pm_net.dir/net/transceiver.cc.o.d"
  "CMakeFiles/pm_net.dir/ni/crc32.cc.o"
  "CMakeFiles/pm_net.dir/ni/crc32.cc.o.d"
  "CMakeFiles/pm_net.dir/ni/linkinterface.cc.o"
  "CMakeFiles/pm_net.dir/ni/linkinterface.cc.o.d"
  "libpm_net.a"
  "libpm_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pm_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
