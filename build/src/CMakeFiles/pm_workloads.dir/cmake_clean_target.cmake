file(REMOVE_RECURSE
  "libpm_workloads.a"
)
