# Empty compiler generated dependencies file for pm_workloads.
# This may be replaced when dependencies are built.
