file(REMOVE_RECURSE
  "CMakeFiles/pm_workloads.dir/workloads/hint.cc.o"
  "CMakeFiles/pm_workloads.dir/workloads/hint.cc.o.d"
  "CMakeFiles/pm_workloads.dir/workloads/matmult.cc.o"
  "CMakeFiles/pm_workloads.dir/workloads/matmult.cc.o.d"
  "CMakeFiles/pm_workloads.dir/workloads/runner.cc.o"
  "CMakeFiles/pm_workloads.dir/workloads/runner.cc.o.d"
  "libpm_workloads.a"
  "libpm_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pm_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
