file(REMOVE_RECURSE
  "libpm_msg.a"
)
