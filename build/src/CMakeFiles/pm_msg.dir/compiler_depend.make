# Empty compiler generated dependencies file for pm_msg.
# This may be replaced when dependencies are built.
