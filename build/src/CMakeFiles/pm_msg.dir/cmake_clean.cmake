file(REMOVE_RECURSE
  "CMakeFiles/pm_msg.dir/msg/collectives.cc.o"
  "CMakeFiles/pm_msg.dir/msg/collectives.cc.o.d"
  "CMakeFiles/pm_msg.dir/msg/driver.cc.o"
  "CMakeFiles/pm_msg.dir/msg/driver.cc.o.d"
  "CMakeFiles/pm_msg.dir/msg/probes.cc.o"
  "CMakeFiles/pm_msg.dir/msg/probes.cc.o.d"
  "CMakeFiles/pm_msg.dir/msg/system.cc.o"
  "CMakeFiles/pm_msg.dir/msg/system.cc.o.d"
  "libpm_msg.a"
  "libpm_msg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pm_msg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
