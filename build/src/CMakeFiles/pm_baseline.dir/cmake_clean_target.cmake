file(REMOVE_RECURSE
  "libpm_baseline.a"
)
