# Empty dependencies file for pm_baseline.
# This may be replaced when dependencies are built.
