file(REMOVE_RECURSE
  "CMakeFiles/pm_baseline.dir/baseline/usercomm.cc.o"
  "CMakeFiles/pm_baseline.dir/baseline/usercomm.cc.o.d"
  "libpm_baseline.a"
  "libpm_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pm_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
