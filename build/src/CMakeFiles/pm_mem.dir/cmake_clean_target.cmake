file(REMOVE_RECURSE
  "libpm_mem.a"
)
