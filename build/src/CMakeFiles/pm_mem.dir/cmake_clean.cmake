file(REMOVE_RECURSE
  "CMakeFiles/pm_mem.dir/mem/bus.cc.o"
  "CMakeFiles/pm_mem.dir/mem/bus.cc.o.d"
  "CMakeFiles/pm_mem.dir/mem/cache.cc.o"
  "CMakeFiles/pm_mem.dir/mem/cache.cc.o.d"
  "CMakeFiles/pm_mem.dir/mem/req.cc.o"
  "CMakeFiles/pm_mem.dir/mem/req.cc.o.d"
  "libpm_mem.a"
  "libpm_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pm_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
