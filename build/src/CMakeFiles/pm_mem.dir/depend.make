# Empty dependencies file for pm_mem.
# This may be replaced when dependencies are built.
