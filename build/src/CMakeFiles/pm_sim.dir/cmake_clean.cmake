file(REMOVE_RECURSE
  "CMakeFiles/pm_sim.dir/sim/event.cc.o"
  "CMakeFiles/pm_sim.dir/sim/event.cc.o.d"
  "CMakeFiles/pm_sim.dir/sim/logging.cc.o"
  "CMakeFiles/pm_sim.dir/sim/logging.cc.o.d"
  "CMakeFiles/pm_sim.dir/sim/stats.cc.o"
  "CMakeFiles/pm_sim.dir/sim/stats.cc.o.d"
  "CMakeFiles/pm_sim.dir/sim/trace.cc.o"
  "CMakeFiles/pm_sim.dir/sim/trace.cc.o.d"
  "libpm_sim.a"
  "libpm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
