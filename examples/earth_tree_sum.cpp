/**
 * @file
 * Fine-grain multithreading on PowerMANNA with the EARTH-style runtime
 * (the paper's Section 7 future work): a divide-and-conquer tree sum
 * over a distributed array, expressed as fibers with split-phase
 * remote reads — no process ever blocks on the network.
 *
 * Each node owns a slice of a global array. The root spawns one
 * threaded function per node; each computes its local partial sum
 * (charged on its processor through its caches) and DATA_SYNCs the
 * result into the root's frame; the root's sync slot fires a final
 * combining fiber.
 */

#include <cstdio>

#include "earth/runtime.hh"
#include "machines/machines.hh"
#include "msg/system.hh"

namespace {

using namespace pm;
using namespace pm::earth;

constexpr unsigned kNodes = 8;
constexpr std::uint64_t kElementsPerNode = 4096;
constexpr Addr kArrayBase = 0x2000'0000;
constexpr Addr kPartialBase = 0x1000;

} // namespace

int
main()
{
    setInformEnabled(false);

    msg::SystemParams sp;
    sp.node = machines::powerManna();
    sp.fabric.clusters = 1;
    sp.fabric.nodesPerCluster = kNodes;
    msg::System sys(sp);
    Runtime rt(sys);

    // ---- Phase 1: every node fills its slice (value = global index).
    for (unsigned n = 0; n < kNodes; ++n) {
        rt.node(n).spawnLocal([n](NodeRt &self) {
            for (std::uint64_t i = 0; i < kElementsPerNode; ++i)
                self.storeLocal(kArrayBase + i * 8,
                                n * kElementsPerNode + i);
        });
    }
    const Tick fillT = rt.run();

    // ---- Phase 2: fan out partial-sum fibers; collect with DATA_SYNC.
    std::uint64_t total = 0;
    bool reported = false;
    auto &root = rt.node(0);
    const SlotRef allIn = root.makeSlot(kNodes, [&](NodeRt &self) {
        for (unsigned r = 0; r < kNodes; ++r)
            total += self.loadLocal(kPartialBase + r * 8);
        reported = true;
    });

    rt.registerFunction(
        1, [allIn](NodeRt &self, const std::vector<std::uint64_t> &) {
            std::uint64_t sum = 0;
            for (std::uint64_t i = 0; i < kElementsPerNode; ++i)
                sum += self.loadLocal(kArrayBase + i * 8);
            self.putRemote(0, kPartialBase + self.nodeId() * 8, sum,
                           allIn);
        });

    root.spawnLocal([](NodeRt &self) {
        for (unsigned n = 0; n < kNodes; ++n)
            self.invokeRemote(n, 1, {});
    });
    const Tick sumT = rt.run();

    const std::uint64_t N = kNodes * kElementsPerNode;
    const std::uint64_t expect = N * (N - 1) / 2;
    std::printf("tree sum of %llu distributed elements = %llu "
                "(expect %llu) %s\n",
                (unsigned long long)N, (unsigned long long)total,
                (unsigned long long)expect,
                total == expect && reported ? "OK" : "MISMATCH");
    std::printf("fill: %.1f us, fan-out + reduce: %.1f us "
                "(%u nodes, split-phase, no blocking receives)\n",
                ticksToUs(fillT), ticksToUs(sumT), kNodes);
    double fibers = 0;
    for (unsigned n = 0; n < kNodes; ++n)
        fibers += rt.node(n).fibersRun.value();
    std::printf("fibers executed: %.0f, remote ops: %.0f\n", fibers,
                rt.node(0).remoteOps.value() + kNodes);
    return total == expect ? 0 : 1;
}
