/**
 * @file
 * Topology explorer: builds PowerMANNA configurations from one cabinet
 * up to the 256-processor system of Figure 5b and reports their
 * structural properties — crossbar counts, route-header lengths, path
 * distributions — then pushes random traffic through the largest one
 * to demonstrate the duplicated network carrying real messages between
 * cabinets (over the asynchronous transceivers).
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "machines/machines.hh"
#include "msg/driver.hh"
#include "msg/probes.hh"
#include "fabric/topology.hh"
#include "sim/random.hh"

namespace {

using namespace pm;

void
describeFabric(unsigned clusters, unsigned uplinks)
{
    sim::EventQueue queue;
    fabric::FabricParams fp;
    fp.clusters = clusters;
    fp.nodesPerCluster = 8;
    fp.uplinksPerCluster = clusters > 1 ? uplinks : 0;
    fp.networks = 2;
    fabric::Fabric fabric(fp, queue);

    const unsigned nodes = fabric.numNodes();
    std::uint64_t pathSum = 0;
    unsigned pathMax = 0;
    std::uint64_t pairs = 0;
    for (unsigned s = 0; s < nodes; ++s) {
        for (unsigned d = 0; d < nodes; ++d) {
            if (s == d)
                continue;
            const unsigned h = fabric.crossbarsOnPath(s, d);
            pathSum += h;
            pathMax = std::max(pathMax, h);
            ++pairs;
        }
    }
    const unsigned xbarsPerNet =
        clusters + (clusters > 1 ? uplinks : 0);
    std::printf("%9u %6u %11u %13u %9.2f %8u\n", nodes, nodes * 2,
                clusters, 2 * xbarsPerNet,
                double(pathSum) / double(pairs), pathMax);
}

} // namespace

int
main()
{
    setInformEnabled(false);

    std::printf("== PowerMANNA configurations (Figure 5) ==\n");
    std::printf("%9s %6s %11s %13s %9s %8s\n", "nodes", "cpus",
                "cabinets", "crossbars", "avg hops", "max hops");
    describeFabric(1, 0); // Figure 5a: one desk-side cabinet
    describeFabric(4, 4);
    describeFabric(8, 8);
    describeFabric(16, 8); // Figure 5b: 128 nodes / 256 processors

    // ---- Drive real random traffic through a two-cabinet machine
    // (nodes included, so the full PIO driver path is exercised; the
    // 16-cabinet fabric above is structural only).
    std::printf("\n== random traffic across two cabinets ==\n");
    msg::SystemParams sp;
    sp.node = machines::powerManna();
    sp.fabric.clusters = 2;
    sp.fabric.nodesPerCluster = 8;
    sp.fabric.uplinksPerCluster = 4;
    msg::System sys(sp);
    sys.resetForRun();

    std::vector<std::unique_ptr<msg::PmComm>> comm;
    for (unsigned n = 0; n < sys.numNodes(); ++n)
        comm.push_back(std::make_unique<msg::PmComm>(sys, n));

    sim::SplitMix64 rng(2026);
    constexpr unsigned kMessages = 48;
    unsigned received = 0;
    for (unsigned m = 0; m < kMessages; ++m) {
        const unsigned src = static_cast<unsigned>(rng.below(16));
        unsigned dst = static_cast<unsigned>(rng.below(15));
        if (dst >= src)
            ++dst;
        auto payload = msg::makePayload(64 + 8 * (m % 32), m);
        comm[src]->postSend(dst, payload);
        comm[dst]->postRecv([&](std::vector<std::uint64_t>, bool ok) {
            if (!ok)
                pm_fatal("random traffic CRC failure");
            ++received;
        });
    }
    const Tick start = sys.queue().now();
    while (received < kMessages && sys.queue().step()) {
    }
    std::printf("%u random messages delivered intact in %.1f us "
                "(inter-cabinet paths cross 3 crossbars + 2 "
                "transceivers)\n",
                received, ticksToUs(sys.queue().now() - start));
    return received == kMessages ? 0 : 1;
}
