/**
 * @file
 * Quickstart: build an 8-node PowerMANNA cluster (Figure 5a), send a
 * message from node 0 to node 5 through the backplane crossbar, and
 * run a kernel on a node's processors.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "machines/machines.hh"
#include "msg/driver.hh"
#include "msg/probes.hh"
#include "workloads/runner.hh"

int
main()
{
    using namespace pm;

    // ---- 1. Describe the machine: one desk-side cabinet of Figure 5a.
    msg::SystemParams params;
    params.node = machines::powerManna(); // dual-MPC620 nodes
    params.fabric.clusters = 1;
    params.fabric.nodesPerCluster = 8;
    msg::System machine(params);
    machine.resetForRun();
    std::printf("built %u-node PowerMANNA cluster (%u processors)\n",
                machine.numNodes(), machine.numNodes() * 2);

    // ---- 2. User-level message passing: node 0 -> node 5.
    msg::PmComm sender(machine, 0);
    msg::PmComm receiver(machine, 5);

    auto payload = msg::makePayload(256, /*seed=*/42);
    bool delivered = false;
    sender.postSend(5, payload);
    receiver.postRecv([&](std::vector<std::uint64_t> words, bool crcOk) {
        delivered = crcOk && words == payload;
        std::printf("node 5 received %zu words, CRC %s, at t=%.2f us\n",
                    words.size(), crcOk ? "ok" : "BAD",
                    ticksToUs(machine.queue().now()));
    });
    while (!delivered && machine.queue().step()) {
    }

    // ---- 3. Measure what the paper measures: 8-byte one-way latency.
    const double latUs = msg::measureOneWayLatencyUs(machine, 0, 1, 8);
    std::printf("8-byte one-way latency: %.2f us (paper: 2.75 us)\n",
                latUs);

    // ---- 4. Run a compute kernel on one node's two processors.
    node::Node &node0 = machine.node(0);
    auto r = workloads::runMatMult(node0, 256, /*transposed=*/true,
                                   /*cpus=*/2, /*rowsToSimulate=*/16);
    std::printf("dual-processor transposed MatMult n=256: %.1f MFLOPS\n",
                r.mflops());
    return delivered ? 0 : 1;
}
