/**
 * @file
 * Global reduction on PowerMANNA: the synchronization-heavy pattern of
 * iterative solvers (dot products, residual norms). Runs an allreduce
 * across 8, then 16 nodes and reports the per-operation cost — the
 * regime where PowerMANNA's microsecond message start-ups (Figure 9)
 * matter far more than peak bandwidth.
 */

#include <cstdio>
#include <numeric>

#include "machines/machines.hh"
#include "msg/collectives.hh"
#include "msg/probes.hh"

namespace {

using namespace pm;

void
runCase(unsigned clusters, unsigned nodesPerCluster, unsigned elements)
{
    msg::SystemParams sp;
    sp.node = machines::powerManna();
    sp.fabric.clusters = clusters;
    sp.fabric.nodesPerCluster = nodesPerCluster;
    sp.fabric.uplinksPerCluster = clusters > 1 ? 4 : 0;
    msg::System sys(sp);
    sys.resetForRun();

    const unsigned ranks = sys.numNodes();
    std::vector<unsigned> ids(ranks);
    std::iota(ids.begin(), ids.end(), 0u);
    msg::Communicator comm(sys, ids);

    std::vector<std::vector<std::uint64_t>> contribs;
    for (unsigned r = 0; r < ranks; ++r)
        contribs.push_back(msg::makePayload(elements * 8, r));

    const Tick barrierT = comm.barrier();
    std::vector<std::uint64_t> result;
    const Tick reduceT = comm.allReduceSum(contribs, result);

    std::printf("%6u nodes (%u cabinet%s): barrier %7.2f us, "
                "allreduce(%u words) %8.2f us\n",
                ranks, clusters, clusters > 1 ? "s" : "",
                ticksToUs(barrierT), elements, ticksToUs(reduceT));
}

} // namespace

int
main()
{
    setInformEnabled(false);
    std::printf("collectives on PowerMANNA (binomial/dissemination over "
                "the user-level driver)\n");
    for (unsigned elements : {1u, 64u, 512u}) {
        runCase(1, 8, elements);
        runCase(2, 8, elements);
    }
    return 0;
}
