/**
 * @file
 * Halo exchange: the canonical distributed-memory scientific kernel
 * (the class of application the paper's introduction targets).
 *
 * An 8-node PowerMANNA cluster computes a 1-D domain-decomposed
 * Jacobi-style stencil: each timestep, every node runs the local
 * stencil sweep on its two processors, then exchanges boundary rows
 * ("halos") with its ring neighbours over the backplane crossbar using
 * the user-level driver. The run reports compute vs communication time
 * per step — on PowerMANNA the short start-up times keep small-halo
 * exchanges cheap, which is exactly the regime Figures 9/10 motivate.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "cpu/sched.hh"
#include "machines/machines.hh"
#include "msg/driver.hh"
#include "msg/probes.hh"
#include "workloads/stream.hh"

namespace {

using namespace pm;

constexpr unsigned kNodes = 8;
constexpr unsigned kSteps = 4;
constexpr unsigned kRowBytes = 1024; //!< One halo row: 128 doubles.
constexpr unsigned kLocalRows = 512; //!< Rows per node per sweep.

/** One node's stencil sweep, run on both processors. */
void
localSweep(msg::System &sys, unsigned nodeId)
{
    node::Node &node = sys.node(nodeId);
    std::vector<std::unique_ptr<workloads::MemStream>> works;
    std::vector<cpu::Job> jobs;
    for (unsigned c = 0; c < node.numCpus(); ++c) {
        workloads::MemStreamParams p;
        p.base = 0x1000'0000 + Addr(c) * 0x0021'5000;
        p.bytes = std::uint64_t(kLocalRows / 2) * kRowBytes;
        p.passes = 1;
        p.storeEvery = 4; // stencil writes the interior back
        works.push_back(std::make_unique<workloads::MemStream>(p));
        jobs.push_back(cpu::Job{&node.proc(c), works.back().get()});
    }
    cpu::runJobs(jobs);
    // Bring both processors (and the driver below) to the same time.
    Tick t = 0;
    for (unsigned c = 0; c < node.numCpus(); ++c)
        t = std::max(t, node.proc(c).time());
    for (unsigned c = 0; c < node.numCpus(); ++c)
        node.proc(c).advanceTo(t);
}

} // namespace

int
main()
{
    setInformEnabled(false);

    msg::SystemParams params;
    params.node = machines::powerManna();
    params.fabric.clusters = 1;
    params.fabric.nodesPerCluster = kNodes;
    msg::System sys(params);
    sys.resetForRun();

    std::vector<std::unique_ptr<msg::PmComm>> comm;
    for (unsigned n = 0; n < kNodes; ++n)
        comm.push_back(std::make_unique<msg::PmComm>(sys, n));

    std::printf("halo exchange on %u nodes, %u bytes per halo row, %u "
                "steps\n",
                kNodes, kRowBytes, kSteps);

    Tick computeTicks = 0;
    Tick commTicks = 0;

    for (unsigned step = 0; step < kSteps; ++step) {
        // ---- Compute phase: all nodes sweep locally (node-local
        // simulated time; nodes are independent here).
        const Tick computeStart = sys.queue().now();
        for (unsigned n = 0; n < kNodes; ++n)
            localSweep(sys, n);
        Tick maxProc = 0;
        for (unsigned n = 0; n < kNodes; ++n)
            maxProc = std::max(maxProc, sys.node(n).proc(0).time());
        computeTicks += maxProc - computeStart;

        // ---- Exchange phase: ring neighbours swap halo rows.
        unsigned received = 0;
        const unsigned expected = 2 * kNodes;
        for (unsigned n = 0; n < kNodes; ++n) {
            const unsigned right = (n + 1) % kNodes;
            const unsigned left = (n + kNodes - 1) % kNodes;
            auto rowR = msg::makePayload(kRowBytes, step * 100 + n);
            auto rowL = msg::makePayload(kRowBytes, step * 100 + 50 + n);
            comm[n]->postSend(right, rowR);
            comm[n]->postSend(left, rowL);
            comm[n]->postRecv(
                [&](std::vector<std::uint64_t>, bool ok) {
                    if (!ok)
                        pm_fatal("halo CRC failure");
                    ++received;
                });
            comm[n]->postRecv(
                [&](std::vector<std::uint64_t>, bool ok) {
                    if (!ok)
                        pm_fatal("halo CRC failure");
                    ++received;
                });
        }
        // Communication starts once the slowest node finished its
        // sweep (processor-local times run ahead of the event queue).
        const Tick commStart = maxProc;
        while (received < expected && sys.queue().step()) {
        }
        commTicks += sys.queue().now() > commStart
                         ? sys.queue().now() - commStart
                         : 0;
    }

    std::printf("compute: %.1f us/step, halo exchange: %.1f us/step "
                "(%.1f%% communication)\n",
                ticksToUs(computeTicks) / kSteps,
                ticksToUs(commTicks) / kSteps,
                100.0 * commTicks / (computeTicks + commTicks));
    return 0;
}
