/**
 * @file
 * google-benchmark microbenchmarks of the simulator's own primitives —
 * the event queue, the cache model, the resource calendars, and the
 * CRC — so regressions in simulator performance (host-side) are
 * visible independently of the architecture experiments.
 */

#include <benchmark/benchmark.h>

#include <functional>
#include <utility>
#include <vector>

#include "mem/bus.hh"
#include "mem/cache.hh"
#include "mem/resource.hh"
#include "ni/crc32.hh"
#include "sim/event.hh"
#include "sim/random.hh"

namespace {

using namespace pm;

/** Whatever handle type schedule() returns (kernel-version agnostic). */
using EventHandle = decltype(std::declval<sim::EventQueue &>().schedule(
    Tick{0}, std::function<void()>{}));

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        sim::EventQueue q;
        int sink = 0;
        for (int i = 0; i < state.range(0); ++i)
            // pmlint: capture-ok(q.run() drains before this frame unwinds)
            (void)q.schedule(static_cast<Tick>(i * 7 % 1000), [&] { ++sink; });
        q.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1024)->Arg(16384);

/**
 * The PmComm driver pattern: a deep queue of pending events where most
 * scheduled events are superseded (cancelled and rescheduled) before
 * they fire. The schedule:cancel ratio is ~2:1 — every pending event is
 * cancelled and re-posted once — against `range(0)` pending events.
 */
void
BM_EventQueueCancelHeavy(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    for (auto _ : state) {
        sim::EventQueue q;
        int sink = 0;
        std::vector<EventHandle> ids;
        ids.reserve(n);
        for (int i = 0; i < n; ++i)
            ids.push_back(q.schedule(
                static_cast<Tick>(1000 + i),
                // pmlint: capture-ok(q.run() drains before this frame unwinds)
                [&] { ++sink; }));
        // Supersede every pending event, driver-style.
        for (int i = 0; i < n; ++i) {
            benchmark::DoNotOptimize(q.cancel(ids[i]));
            ids[i] = q.schedule(
                static_cast<Tick>(2000 + i),
                // pmlint: capture-ok(q.run() drains before this frame unwinds)
                [&] { ++sink; });
        }
        q.run();
        benchmark::DoNotOptimize(sink);
    }
    // Each pending event is scheduled twice, cancelled once, run once.
    state.SetItemsProcessed(state.iterations() * state.range(0) * 2);
}
BENCHMARK(BM_EventQueueCancelHeavy)->Arg(1024)->Arg(10000);

/**
 * Steady state of a long whole-system run: `range(0)` periodic
 * components, each rescheduling itself, with a sprinkle of one-shot
 * events — no queue growth, pure per-event kernel overhead.
 */
void
BM_EventQueuePeriodicSteadyState(benchmark::State &state)
{
    const int components = static_cast<int>(state.range(0));
    sim::EventQueue q;
    std::uint64_t sink = 0;
    std::function<void(int)> tickFn = [&](int i) {
        ++sink;
        // pmlint: capture-ok(tickFn outlives the queue it is scheduled on)
        (void)q.scheduleIn(static_cast<Tick>(50 + i % 17), [&tickFn, i] {
            tickFn(i);
        });
    };
    for (int i = 0; i < components; ++i)
        // pmlint: capture-ok(tickFn outlives the queue it is scheduled on)
        (void)q.schedule(static_cast<Tick>(i % 31), [&tickFn, i] { tickFn(i); });
    for (auto _ : state) {
        q.step();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventQueuePeriodicSteadyState)->Arg(64)->Arg(4096);

void
BM_CacheHitAccess(benchmark::State &state)
{
    struct NullBus : mem::BusTarget
    {
        mem::BusResult
        request(const mem::BusReq &, Tick now) override
        {
            return mem::BusResult{now + 100000, false, false};
        }
    } bus;
    mem::CacheParams p;
    p.sizeBytes = 32 * 1024;
    p.assoc = 8;
    p.lineSize = 64;
    mem::Cache cache(p, &bus);
    // Warm one line.
    cache.access(mem::MemReq{0x1000, false, 0}, 0);
    Tick t = 1000000;
    for (auto _ : state) {
        auto r = cache.access(mem::MemReq{0x1000, false, 0}, t);
        benchmark::DoNotOptimize(r);
        t += 1000;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheHitAccess);

void
BM_ResourceCalendarAcquire(benchmark::State &state)
{
    mem::Resource r;
    Tick t = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(r.acquire(t, 100));
        t += 150;
        if ((t % (1 << 20)) < 150)
            r.pruneBelow(t - 1000);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ResourceCalendarAcquire);

void
BM_Crc32Words(benchmark::State &state)
{
    sim::SplitMix64 rng(1);
    std::vector<std::uint64_t> words(1024);
    for (auto &w : words)
        w = rng.next();
    for (auto _ : state) {
        ni::Crc32 crc;
        for (auto w : words)
            crc.update(w);
        benchmark::DoNotOptimize(crc.value());
    }
    state.SetBytesProcessed(state.iterations() * 8192);
}
BENCHMARK(BM_Crc32Words);

} // namespace

BENCHMARK_MAIN();
