/**
 * @file
 * google-benchmark microbenchmarks of the simulator's own primitives —
 * the event queue, the cache model, the resource calendars, and the
 * CRC — so regressions in simulator performance (host-side) are
 * visible independently of the architecture experiments.
 */

#include <benchmark/benchmark.h>

#include "mem/bus.hh"
#include "mem/cache.hh"
#include "mem/resource.hh"
#include "ni/crc32.hh"
#include "sim/event.hh"
#include "sim/random.hh"

namespace {

using namespace pm;

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        sim::EventQueue q;
        int sink = 0;
        for (int i = 0; i < state.range(0); ++i)
            q.schedule(static_cast<Tick>(i * 7 % 1000), [&] { ++sink; });
        q.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1024)->Arg(16384);

void
BM_CacheHitAccess(benchmark::State &state)
{
    struct NullBus : mem::BusTarget
    {
        mem::BusResult
        request(const mem::BusReq &, Tick now) override
        {
            return mem::BusResult{now + 100000, false, false};
        }
    } bus;
    mem::CacheParams p;
    p.sizeBytes = 32 * 1024;
    p.assoc = 8;
    p.lineSize = 64;
    mem::Cache cache(p, &bus);
    // Warm one line.
    cache.access(mem::MemReq{0x1000, false, 0}, 0);
    Tick t = 1000000;
    for (auto _ : state) {
        auto r = cache.access(mem::MemReq{0x1000, false, 0}, t);
        benchmark::DoNotOptimize(r);
        t += 1000;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheHitAccess);

void
BM_ResourceCalendarAcquire(benchmark::State &state)
{
    mem::Resource r;
    Tick t = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(r.acquire(t, 100));
        t += 150;
        if ((t % (1 << 20)) < 150)
            r.pruneBelow(t - 1000);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ResourceCalendarAcquire);

void
BM_Crc32Words(benchmark::State &state)
{
    sim::SplitMix64 rng(1);
    std::vector<std::uint64_t> words(1024);
    for (auto &w : words)
        w = rng.next();
    for (auto _ : state) {
        ni::Crc32 crc;
        for (auto w : words)
            crc.update(w);
        benchmark::DoNotOptimize(crc.value());
    }
    state.SetBytesProcessed(state.iterations() * 8192);
}
BENCHMARK(BM_Crc32Words);

} // namespace

BENCHMARK_MAIN();
