/**
 * @file
 * Shared plumbing for thread-parallel benches: every figure/ablation
 * bench runs its measurement points through pm::sim::sweep so that
 * `<bench> --jobs N` fans fully isolated Systems out over N worker
 * threads with byte-identical output to the sequential run.
 *
 * The benches format each point's output into a string (or collect
 * raw numbers) inside the point callable and print only after the
 * sweep joins — stdout stays strictly in work-list order no matter
 * which worker finished first.
 */

#ifndef PM_SWEEP_SUPPORT_HH
#define PM_SWEEP_SUPPORT_HH

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "sim/parse.hh"
#include "sim/sweep.hh"

namespace pm::benchsup {

/**
 * Parse `--jobs N` / `--jobs=N` from a bench's argv (default 1).
 * Strict: `--jobs garbage` used to strtoul to 0 — which means "one
 * worker per hardware thread" — silently turning a typo into a
 * different execution. Non-numeric or trailing-junk values are a
 * usage error (exit 2).
 */
inline unsigned
jobsFromArgv(int argc, char **argv)
{
    const auto parse = [](const char *v) -> unsigned {
        unsigned jobs = 0;
        if (!sim::parse::u32(v, jobs)) {
            std::fprintf(stderr,
                         "--jobs expects an unsigned number, got '%s'\n",
                         v);
            // pmlint: abort-ok(usage error before any simulation exists)
            std::exit(2);
        }
        return jobs;
    };
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc)
            return parse(argv[i + 1]);
        if (std::strncmp(argv[i], "--jobs=", 7) == 0)
            return parse(argv[i] + 7);
    }
    return 1;
}

/**
 * Parse `--kernel-threads N` / `--kernel-threads=N` from a bench's
 * argv (default 0 = classic kernel), with the same strictness as
 * jobsFromArgv. Benches pass the value into
 * msg::SystemParams::kernelThreads.
 */
inline unsigned
kernelThreadsFromArgv(int argc, char **argv)
{
    const auto parse = [](const char *v) -> unsigned {
        unsigned threads = 0;
        if (!sim::parse::u32(v, threads) || threads == 0) {
            std::fprintf(stderr,
                         "--kernel-threads expects a thread count >= 1, "
                         "got '%s'\n",
                         v);
            // pmlint: abort-ok(usage error before any simulation exists)
            std::exit(2);
        }
        return threads;
    };
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--kernel-threads") == 0 && i + 1 < argc)
            return parse(argv[i + 1]);
        if (std::strncmp(argv[i], "--kernel-threads=", 17) == 0)
            return parse(argv[i] + 17);
    }
    return 0;
}

/** Harness options for a bench: --jobs from argv, quiet workers. */
inline sim::sweep::Options
options(int argc, char **argv, std::uint64_t seed = 0)
{
    sim::sweep::Options opt;
    opt.jobs = jobsFromArgv(argc, argv);
    opt.seed = seed;
    opt.inform = false;
    return opt;
}

inline void appendf(std::string &out, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

/** printf-append into a std::string (points render off-thread). */
inline void
appendf(std::string &out, const char *fmt, ...)
{
    char buf[1024];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    out += buf;
}

/**
 * Print a string-row report in work-list order. If any point failed,
 * its row is withheld, the lowest-index failure (message + forensic
 * dump) goes to stderr, and the nonzero exit propagates the failure
 * to the caller/CI.
 */
inline int
emitRows(const sim::sweep::Report<std::string> &report)
{
    std::size_t nextFail = 0;
    for (std::size_t i = 0; i < report.results.size(); ++i) {
        if (nextFail < report.failures.size() &&
            report.failures[nextFail].index == i) {
            ++nextFail;
            continue;
        }
        std::fputs(report.results[i].c_str(), stdout);
    }
    if (!report.ok()) {
        const auto &f = report.firstFailure();
        std::fprintf(stderr, "sweep point %zu failed:\n%s\n%s",
                     f.index, f.message.c_str(), f.dump.c_str());
        return 1;
    }
    return 0;
}

/**
 * For benches that post-process numeric results: bail out on the
 * first failure (stderr + nonzero) before the caller touches any
 * result slot.
 */
template <typename R>
inline int
checkFailures(const sim::sweep::Report<R> &report)
{
    if (report.ok())
        return 0;
    const auto &f = report.firstFailure();
    std::fprintf(stderr, "sweep point %zu failed:\n%s\n%s", f.index,
                 f.message.c_str(), f.dump.c_str());
    return 1;
}

} // namespace pm::benchsup

#endif // PM_SWEEP_SUPPORT_HH
