/**
 * @file
 * Shared plumbing for thread-parallel benches: every figure/ablation
 * bench runs its measurement points through pm::sim::sweep so that
 * `<bench> --jobs N` fans fully isolated Systems out over N worker
 * threads with byte-identical output to the sequential run.
 *
 * The benches format each point's output into a string (or collect
 * raw numbers) inside the point callable and print only after the
 * sweep joins — stdout stays strictly in work-list order no matter
 * which worker finished first.
 */

#ifndef PM_BENCH_SWEEP_SUPPORT_HH
#define PM_BENCH_SWEEP_SUPPORT_HH

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "sim/sweep.hh"

namespace pm::benchsup {

/** Parse `--jobs N` / `--jobs=N` from a bench's argv (default 1). */
inline unsigned
jobsFromArgv(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc)
            return static_cast<unsigned>(
                std::strtoul(argv[i + 1], nullptr, 0));
        if (std::strncmp(argv[i], "--jobs=", 7) == 0)
            return static_cast<unsigned>(
                std::strtoul(argv[i] + 7, nullptr, 0));
    }
    return 1;
}

/** Harness options for a bench: --jobs from argv, quiet workers. */
inline sim::sweep::Options
options(int argc, char **argv, std::uint64_t seed = 0)
{
    sim::sweep::Options opt;
    opt.jobs = jobsFromArgv(argc, argv);
    opt.seed = seed;
    opt.inform = false;
    return opt;
}

inline void appendf(std::string &out, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

/** printf-append into a std::string (points render off-thread). */
inline void
appendf(std::string &out, const char *fmt, ...)
{
    char buf[1024];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    out += buf;
}

/**
 * Print a string-row report in work-list order. If any point failed,
 * its row is withheld, the lowest-index failure (message + forensic
 * dump) goes to stderr, and the nonzero exit propagates the failure
 * to the caller/CI.
 */
inline int
emitRows(const sim::sweep::Report<std::string> &report)
{
    std::size_t nextFail = 0;
    for (std::size_t i = 0; i < report.results.size(); ++i) {
        if (nextFail < report.failures.size() &&
            report.failures[nextFail].index == i) {
            ++nextFail;
            continue;
        }
        std::fputs(report.results[i].c_str(), stdout);
    }
    if (!report.ok()) {
        const auto &f = report.firstFailure();
        std::fprintf(stderr, "sweep point %zu failed:\n%s\n%s",
                     f.index, f.message.c_str(), f.dump.c_str());
        return 1;
    }
    return 0;
}

/**
 * For benches that post-process numeric results: bail out on the
 * first failure (stderr + nonzero) before the caller touches any
 * result slot.
 */
template <typename R>
inline int
checkFailures(const sim::sweep::Report<R> &report)
{
    if (report.ok())
        return 0;
    const auto &f = report.firstFailure();
    std::fprintf(stderr, "sweep point %zu failed:\n%s\n%s", f.index,
                 f.message.c_str(), f.dump.c_str());
    return 1;
}

} // namespace pm::benchsup

#endif // PM_BENCH_SWEEP_SUPPORT_HH
