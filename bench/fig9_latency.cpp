/**
 * @file
 * Figure 9: one-way latency (half ping-pong) over message size, for
 * PowerMANNA (measured on the simulated machine) and for BIP and FM on
 * the Myrinet PC cluster (cost models calibrated to [9], exactly as
 * the paper takes its baseline numbers from [9]).
 *
 * Paper anchors: 8 bytes in 2.75 us on PowerMANNA vs 6.4 us (BIP) and
 * 9.2 us (FM) — PowerMANNA clearly ahead for short messages; for large
 * messages its 60 MB/s link makes it slower than Myrinet.
 */

#include <cstdio>
#include <vector>

#include "baseline/usercomm.hh"
#include "machines/machines.hh"
#include "msg/probes.hh"
#include "sim/logging.hh"

int
main()
{
    pm::setInformEnabled(false);
    using namespace pm;

    msg::SystemParams sp;
    sp.node = machines::powerManna();
    sp.fabric.clusters = 1;
    sp.fabric.nodesPerCluster = 8;
    msg::System sys(sp);

    const auto bip = baseline::UserLevelCommModel::bip();
    const auto fm = baseline::UserLevelCommModel::fm();

    std::printf("== Figure 9: one-way latency (us) over message size "
                "==\n");
    std::printf("%8s %12s %12s %12s\n", "bytes", "powermanna", "bip",
                "fm");
    for (unsigned bytes :
         {4u, 8u, 16u, 32u, 64u, 128u, 256u, 512u, 1024u, 2048u, 4096u}) {
        const double pmUs =
            msg::measureOneWayLatencyUs(sys, 0, 1, bytes, 8);
        std::printf("%8u %12.2f %12.2f %12.2f\n", bytes, pmUs,
                    bip.oneWayLatencyUs(bytes), fm.oneWayLatencyUs(bytes));
    }

    std::printf("\npaper anchor check (8 bytes): PowerMANNA %.2f us "
                "(paper: 2.75), BIP %.2f (6.4), FM %.2f (9.2)\n",
                msg::measureOneWayLatencyUs(sys, 0, 1, 8, 8),
                bip.oneWayLatencyUs(8), fm.oneWayLatencyUs(8));
    return 0;
}
