/**
 * @file
 * Figure 9: one-way latency (half ping-pong) over message size, for
 * PowerMANNA (measured on the simulated machine) and for BIP and FM on
 * the Myrinet PC cluster (cost models calibrated to [9], exactly as
 * the paper takes its baseline numbers from [9]).
 *
 * Paper anchors: 8 bytes in 2.75 us on PowerMANNA vs 6.4 us (BIP) and
 * 9.2 us (FM) — PowerMANNA clearly ahead for short messages; for large
 * messages its 60 MB/s link makes it slower than Myrinet.
 *
 * Each message size is one pm::sim::sweep point with a System of its
 * own; `--jobs N` runs the points on N threads, byte-identically.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "baseline/usercomm.hh"
#include "machines/machines.hh"
#include "msg/probes.hh"
#include "msg/system.hh"
#include "sim/logging.hh"
#include "sweep_support.hh"

namespace {

using namespace pm;

msg::SystemParams
figParams()
{
    msg::SystemParams sp;
    sp.node = machines::powerManna();
    sp.fabric.clusters = 1;
    sp.fabric.nodesPerCluster = 8;
    return sp;
}

} // namespace

int
main(int argc, char **argv)
{
    pm::setInformEnabled(false);

    const std::vector<unsigned> sizes{4u,   8u,   16u,  32u,   64u,  128u,
                                      256u, 512u, 1024u, 2048u, 4096u};

    std::printf("== Figure 9: one-way latency (us) over message size "
                "==\n");
    std::printf("%8s %12s %12s %12s\n", "bytes", "powermanna", "bip",
                "fm");
    const auto report = sim::sweep::map(
        sizes,
        [](unsigned bytes, const sim::sweep::Point &) {
            msg::System sys(figParams());
            const auto bip = baseline::UserLevelCommModel::bip();
            const auto fm = baseline::UserLevelCommModel::fm();
            const double pmUs =
                msg::measureOneWayLatencyUs(sys, 0, 1, bytes, 8);
            std::string row;
            benchsup::appendf(row, "%8u %12.2f %12.2f %12.2f\n", bytes,
                              pmUs, bip.oneWayLatencyUs(bytes),
                              fm.oneWayLatencyUs(bytes));
            return row;
        },
        benchsup::options(argc, argv));
    if (const int rc = benchsup::emitRows(report))
        return rc;

    msg::System sys(figParams());
    const auto bip = baseline::UserLevelCommModel::bip();
    const auto fm = baseline::UserLevelCommModel::fm();
    std::printf("\npaper anchor check (8 bytes): PowerMANNA %.2f us "
                "(paper: 2.75), BIP %.2f (6.4), FM %.2f (9.2)\n",
                msg::measureOneWayLatencyUs(sys, 0, 1, 8, 8),
                bip.oneWayLatencyUs(8), fm.oneWayLatencyUs(8));
    return 0;
}
