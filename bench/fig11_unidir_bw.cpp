/**
 * @file
 * Figure 11: unidirectional bandwidth over message size, PowerMANNA
 * (measured) vs BIP and FM (models calibrated to [9]).
 *
 * Paper shape: PowerMANNA's curve saturates at the 60 MB/s single-link
 * wire rate — "for larger messages PowerMANNA's performance is limited
 * by its current network technology" — while BIP climbs to the
 * ~126 MB/s the PCI interface allows.
 */

#include <cstdio>

#include "baseline/usercomm.hh"
#include "machines/machines.hh"
#include "msg/probes.hh"
#include "sim/logging.hh"

int
main()
{
    pm::setInformEnabled(false);
    using namespace pm;

    msg::SystemParams sp;
    sp.node = machines::powerManna();
    sp.fabric.clusters = 1;
    sp.fabric.nodesPerCluster = 8;
    msg::System sys(sp);

    const auto bip = baseline::UserLevelCommModel::bip();
    const auto fm = baseline::UserLevelCommModel::fm();

    std::printf("== Figure 11: unidirectional bandwidth (MB/s) ==\n");
    std::printf("%8s %12s %12s %12s\n", "bytes", "powermanna", "bip",
                "fm");
    for (unsigned bytes : {16u, 64u, 256u, 1024u, 4096u, 16384u, 65536u,
                           262144u}) {
        const unsigned count = bytes >= 16384 ? 12 : 32;
        const double pmBw =
            msg::measureUnidirectionalMBps(sys, 0, 1, bytes, count);
        std::printf("%8u %12.1f %12.1f %12.1f\n", bytes, pmBw,
                    bip.unidirectionalMBps(bytes),
                    fm.unidirectionalMBps(bytes));
    }

    std::printf("\npaper check: PowerMANNA saturates at ~60 MB/s (the "
                "single-link wire rate); BIP reaches ~126 MB/s\n");
    return 0;
}
