/**
 * @file
 * Figure 11: unidirectional bandwidth over message size, PowerMANNA
 * (measured) vs BIP and FM (models calibrated to [9]).
 *
 * Paper shape: PowerMANNA's curve saturates at the 60 MB/s single-link
 * wire rate — "for larger messages PowerMANNA's performance is limited
 * by its current network technology" — while BIP climbs to the
 * ~126 MB/s the PCI interface allows.
 *
 * Each message size is one pm::sim::sweep point with a System of its
 * own; `--jobs N` runs the points on N threads, byte-identically.
 * `--kernel-threads N` builds each point's System on the partitioned
 * event kernel — single-cluster, so one partition: the CI TSan job
 * uses this to prove the figure is kernel-invariant.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "baseline/usercomm.hh"
#include "machines/machines.hh"
#include "msg/probes.hh"
#include "msg/system.hh"
#include "sim/logging.hh"
#include "sweep_support.hh"

int
main(int argc, char **argv)
{
    pm::setInformEnabled(false);
    using namespace pm;

    const std::vector<unsigned> sizes{16u,    64u,    256u,   1024u,
                                      4096u, 16384u, 65536u, 262144u};
    const unsigned kernelThreads =
        benchsup::kernelThreadsFromArgv(argc, argv);

    std::printf("== Figure 11: unidirectional bandwidth (MB/s) ==\n");
    std::printf("%8s %12s %12s %12s\n", "bytes", "powermanna", "bip",
                "fm");
    const auto report = sim::sweep::map(
        sizes,
        [kernelThreads](unsigned bytes, const sim::sweep::Point &) {
            msg::SystemParams sp;
            sp.node = machines::powerManna();
            sp.fabric.clusters = 1;
            sp.fabric.nodesPerCluster = 8;
            sp.kernelThreads = kernelThreads;
            msg::System sys(sp);
            const auto bip = baseline::UserLevelCommModel::bip();
            const auto fm = baseline::UserLevelCommModel::fm();
            const unsigned count = bytes >= 16384 ? 12 : 32;
            const double pmBw =
                msg::measureUnidirectionalMBps(sys, 0, 1, bytes, count);
            std::string row;
            benchsup::appendf(row, "%8u %12.1f %12.1f %12.1f\n", bytes,
                              pmBw, bip.unidirectionalMBps(bytes),
                              fm.unidirectionalMBps(bytes));
            return row;
        },
        benchsup::options(argc, argv));
    if (const int rc = benchsup::emitRows(report))
        return rc;

    std::printf("\npaper check: PowerMANNA saturates at ~60 MB/s (the "
                "single-link wire rate); BIP reaches ~126 MB/s\n");
    return 0;
}
