/**
 * @file
 * Extension bench: load-generates the pmsimd simulation service and
 * verifies its robustness contract under concurrent clients with
 * *injected failures* — some jobs panic (strict-soak contract
 * violation), some wedge behind a dead link until their virtual-time
 * deadline trips. The server must:
 *
 *  - survive every injected failure (each becomes that job's own
 *    `error` frame with a forensic dump; the service keeps serving),
 *  - return byte-identical rows for identical specs regardless of
 *    which client/worker ran them (the determinism contract that makes
 *    the result cache sound),
 *  - serve a verified cache hit on resubmission,
 *  - and drain gracefully when asked.
 *
 * By default the bench hosts the Server in-process (so it runs
 * standalone and can observe the drain). With --socket PATH it drives
 * an externally started pmsimd instead — that is how the CI
 * service-smoke job uses it, with drain/exit checked from the outside.
 *
 * Results go to BENCH_service.json. Exit is nonzero if the server
 * misbehaves in any of the ways listed above.
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "sim/logging.hh"
#include "sim/parse.hh"
#include "svc/client.hh"
#include "svc/server.hh"

namespace {

using namespace pm;

struct BenchOptions
{
    std::string socketPath; //!< Empty = self-host a Server.
    unsigned clients = 4;
    unsigned jobsPerClient = 6;
    unsigned workers = 4;     //!< Self-hosted server only.
    unsigned queueDepth = 32; //!< Self-hosted server only.
    bool injectPanic = true;  //!< One strict-soak panic job (~5 s).
};

/** One job in the deterministic load mix. */
struct JobKind
{
    const char *name;
    std::vector<std::string> argv;
    bool expectError;     //!< Exactly one error frame expected.
    const char *errorNeedle; //!< Substring the error must carry.
};

/**
 * The mix rotates per (client, j): mostly healthy measurements whose
 * specs repeat across clients (cache hits and the byte-identity
 * check), plus a deadline-wedged soak every 3rd job. The single
 * strict-panic job (slow: it simulates the sender's full give-up) is
 * injected once, as client 0's job 1.
 */
JobKind
jobKind(const BenchOptions &opt, unsigned client, unsigned j)
{
    if (opt.injectPanic && client == 0 && j == 1)
        return {"panic",
                {"--op", "soak", "--count", "1", "--fault-drop", "1.0",
                 "--strict"},
                true,
                "strict soak failed"};
    if (j % 3 == 2)
        return {"wedge",
                {"--op", "soak", "--bytes", "256", "--count", "8",
                 "--fault-link-down", "0:1000000000", "--deadline-us",
                 "500"},
                true,
                "watchdog tripped"};
    const char *bytes[] = {"8", "64", "512", "4096"};
    return {"healthy",
            {"--op", "latency", "--bytes", bytes[(client + j) % 4]},
            false,
            ""};
}

struct ClientTally
{
    unsigned accepted = 0;
    unsigned rejected = 0;
    unsigned rows = 0;
    unsigned cachedRows = 0;
    unsigned errors = 0;
    unsigned expectedErrors = 0;
    std::vector<std::string> problems;
};

/** spec key (argv joined) -> every row byte-string any client saw. */
std::mutex gRowsMu;
std::map<std::string, std::vector<std::string>> gRowsBySpec;

std::string
specKey(const std::vector<std::string> &argv)
{
    std::string key;
    for (const auto &a : argv) {
        key += a;
        key += ' ';
    }
    return key;
}

void
runClient(const BenchOptions &opt, const std::string &socketPath,
          unsigned client, ClientTally &tally)
{
    svc::Client conn;
    std::string err;
    if (!conn.connect(socketPath, err)) {
        tally.problems.push_back("connect: " + err);
        return;
    }
    for (unsigned j = 0; j < opt.jobsPerClient; ++j) {
        const JobKind kind = jobKind(opt, client, j);
        char id[64];
        std::snprintf(id, sizeof id, "c%u-j%u-%s", client, j,
                      kind.name);
        std::string reason;
        std::string detail;
        const auto verdict =
            conn.submitJob(id, kind.argv, /*retries=*/8,
                           /*backoffMs=*/10, reason, detail, err);
        if (verdict == svc::Client::Submit::Error) {
            tally.problems.push_back(std::string(id) + ": " + err);
            return;
        }
        if (verdict == svc::Client::Submit::Rejected) {
            // Backpressure is allowed (the queue is sized to be hit
            // under this load); a bad_spec here is a bench bug.
            ++tally.rejected;
            if (reason != "queue_full")
                tally.problems.push_back(std::string(id) +
                                         ": rejected " + reason + ": " +
                                         detail);
            continue;
        }
        ++tally.accepted;
        if (kind.expectError)
            ++tally.expectedErrors;
        bool sawExpectedError = false;
        for (bool done = false; !done;) {
            svc::json::Value frame;
            if (!conn.recv(frame, err)) {
                tally.problems.push_back(std::string(id) +
                                         ": recv: " + err);
                return;
            }
            const std::string type = frame.str("type");
            if (type == "row") {
                ++tally.rows;
                const svc::json::Value *cached = frame.find("cached");
                if (cached != nullptr && cached->boolean)
                    ++tally.cachedRows;
                std::lock_guard<std::mutex> lock(gRowsMu);
                gRowsBySpec[specKey(kind.argv)].push_back(
                    frame.str("data"));
            } else if (type == "error") {
                ++tally.errors;
                const std::string message = frame.str("message");
                if (kind.expectError &&
                    message.find(kind.errorNeedle) != std::string::npos)
                    sawExpectedError = true;
                else
                    tally.problems.push_back(std::string(id) +
                                             ": unexpected error: " +
                                             message);
                if (frame.str("dump").find("=== health dump") ==
                    std::string::npos)
                    tally.problems.push_back(std::string(id) +
                                             ": error without dump");
            } else if (type == "done") {
                done = true;
            } else {
                tally.problems.push_back(std::string(id) +
                                         ": bad frame " + type);
                return;
            }
        }
        if (kind.expectError && !sawExpectedError)
            tally.problems.push_back(std::string(id) +
                                     ": expected \"" +
                                     kind.errorNeedle +
                                     "\" error never arrived");
    }
}

void
usage()
{
    std::fprintf(
        stderr,
        "usage: ext_service [--socket PATH] [--clients N]\n"
        "                   [--jobs-per-client M] [--workers W]\n"
        "                   [--queue-depth D] [--no-panic-job]\n"
        "  --socket PATH   drive an external pmsimd (default:\n"
        "                  self-host a Server in-process)\n"
        "  --no-panic-job  skip the slow strict-soak panic job\n");
}

} // namespace

int
main(int argc, char **argv)
{
    setInformEnabled(false);
    BenchOptions opt;
    for (int i = 1; i < argc; ++i) {
        const std::string key = argv[i];
        const char *val = i + 1 < argc ? argv[i + 1] : nullptr;
        auto need = [&]() {
            if (val == nullptr) {
                usage();
                // pmlint: abort-ok(usage error before any simulation)
                std::exit(2);
            }
            ++i;
            return val;
        };
        bool ok = true;
        if (key == "--socket")
            opt.socketPath = need();
        else if (key == "--clients")
            ok = sim::parse::u32(need(), opt.clients) && opt.clients > 0;
        else if (key == "--jobs-per-client")
            ok = sim::parse::u32(need(), opt.jobsPerClient) &&
                 opt.jobsPerClient > 0;
        else if (key == "--workers")
            ok = sim::parse::u32(need(), opt.workers) && opt.workers > 0;
        else if (key == "--queue-depth")
            ok = sim::parse::u32(need(), opt.queueDepth) &&
                 opt.queueDepth > 0;
        else if (key == "--no-panic-job")
            opt.injectPanic = false;
        else {
            usage();
            return 2;
        }
        if (!ok) {
            std::fprintf(stderr, "ext_service: bad value for %s\n",
                         key.c_str());
            return 2;
        }
    }

    // ---- Optionally self-host the service. ----
    const bool selfHost = opt.socketPath.empty();
    std::unique_ptr<svc::Server> server;
    std::thread serverThread;
    std::atomic<bool> stopServer{false};
    std::uint64_t served = 0;
    if (selfHost) {
        svc::ServerOptions so;
        so.socketPath = "ext_service.sock";
        so.workers = opt.workers;
        so.queueDepth = opt.queueDepth;
        so.cacheDir = ".";
        opt.socketPath = so.socketPath;
        server = std::make_unique<svc::Server>(so);
        std::string err;
        if (!server->start(err)) {
            std::fprintf(stderr, "ext_service: %s\n", err.c_str());
            return 1;
        }
        serverThread = std::thread(
            [&] { served = server->run(stopServer); });
    }

    std::printf("== ext_service: %u clients x %u jobs (%s%s) ==\n",
                opt.clients, opt.jobsPerClient,
                selfHost ? "self-hosted" : "external",
                opt.injectPanic ? ", panic+deadline jobs injected"
                                : ", deadline jobs injected");

    // ---- The load. ----
    // pmlint: banned-ok(service throughput is wall-clock by nature)
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<ClientTally> tallies(opt.clients);
    std::vector<std::thread> threads;
    for (unsigned c = 0; c < opt.clients; ++c)
        threads.emplace_back([&, c] {
            runClient(opt, opt.socketPath, c, tallies[c]);
        });
    for (auto &t : threads)
        t.join();
    // pmlint: banned-ok(service throughput is wall-clock by nature)
    const auto t1 = std::chrono::steady_clock::now();
    const double wallMs =
        std::chrono::duration<double, std::milli>(t1 - t0).count();

    // ---- Tally + verify. ----
    ClientTally total;
    std::vector<std::string> problems;
    for (unsigned c = 0; c < opt.clients; ++c) {
        total.accepted += tallies[c].accepted;
        total.rejected += tallies[c].rejected;
        total.rows += tallies[c].rows;
        total.cachedRows += tallies[c].cachedRows;
        total.errors += tallies[c].errors;
        total.expectedErrors += tallies[c].expectedErrors;
        for (const auto &p : tallies[c].problems)
            problems.push_back("client " + std::to_string(c) + " " + p);
    }
    if (total.errors != total.expectedErrors)
        problems.push_back(
            "error frames (" + std::to_string(total.errors) +
            ") != injected failures (" +
            std::to_string(total.expectedErrors) + ")");

    // Byte-identity: every row any client got for a given spec must
    // be the same bytes — cached, fresh, whichever worker ran it.
    unsigned distinctSpecs = 0;
    for (const auto &[key, rows] : gRowsBySpec) {
        ++distinctSpecs;
        for (const auto &row : rows)
            if (row != rows.front()) {
                problems.push_back("rows diverge for spec: " + key);
                break;
            }
    }

    // The server survived the injected failures: it must still answer.
    {
        svc::Client probe;
        std::string err;
        if (!probe.connect(opt.socketPath, err) || !probe.ping(err))
            problems.push_back("server unresponsive after load: " + err);
    }

    // ---- Drain (self-hosted only; CI checks external drain itself). ----
    if (selfHost) {
        stopServer.store(true);
        serverThread.join();
        if (served != total.accepted)
            problems.push_back(
                "served " + std::to_string(served) + " jobs, accepted " +
                std::to_string(total.accepted));
        std::remove(server->cacheIndexPath().c_str());
        std::remove(opt.socketPath.c_str());
    }

    const double rowRate =
        wallMs > 0.0 ? 1000.0 * total.rows / wallMs : 0.0;
    std::printf("  accepted %u  backpressured %u  rows %u "
                "(%u cached)  errors %u/%u expected\n",
                total.accepted, total.rejected, total.rows,
                total.cachedRows, total.errors, total.expectedErrors);
    std::printf("  %.1f ms wall, %.1f rows/s, %u distinct specs\n",
                wallMs, rowRate, distinctSpecs);
    for (const auto &p : problems)
        std::fprintf(stderr, "ext_service: FAIL: %s\n", p.c_str());

    FILE *json = std::fopen("BENCH_service.json", "w");
    if (json == nullptr) {
        std::fprintf(stderr,
                     "ext_service: cannot write BENCH_service.json\n");
        return 1;
    }
    std::fprintf(json,
                 "{\n"
                 "  \"clients\": %u,\n"
                 "  \"jobs_per_client\": %u,\n"
                 "  \"self_hosted\": %s,\n"
                 "  \"accepted\": %u,\n"
                 "  \"backpressured\": %u,\n"
                 "  \"rows\": %u,\n"
                 "  \"cached_rows\": %u,\n"
                 "  \"injected_failures\": %u,\n"
                 "  \"error_frames\": %u,\n"
                 "  \"distinct_specs\": %u,\n"
                 "  \"wall_ms\": %.3f,\n"
                 "  \"rows_per_s\": %.3f,\n"
                 "  \"problems\": %zu\n"
                 "}\n",
                 opt.clients, opt.jobsPerClient,
                 selfHost ? "true" : "false", total.accepted,
                 total.rejected, total.rows, total.cachedRows,
                 total.expectedErrors, total.errors, distinctSpecs,
                 wallMs, rowRate, problems.size());
    std::fclose(json);
    std::printf("  wrote BENCH_service.json\n");
    return problems.empty() ? 0 : 1;
}
