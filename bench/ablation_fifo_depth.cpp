/**
 * @file
 * Ablation for the paper's Figure 12 diagnosis: "This overhead could
 * be significantly reduced if larger FIFO buffers were implemented."
 *
 * Sweeps the link-interface FIFO depth (the hardware is 32 x 64-bit
 * words) and, in lockstep, the driver's direction-switch burst, and
 * measures simultaneous bidirectional bandwidth.
 *
 * Each depth is one pm::sim::sweep point with a System of its own;
 * `--jobs N` runs the points on N threads, byte-identically.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "machines/machines.hh"
#include "msg/probes.hh"
#include "msg/system.hh"
#include "sim/logging.hh"
#include "sweep_support.hh"

int
main(int argc, char **argv)
{
    pm::setInformEnabled(false);
    using namespace pm;

    std::printf("== Ablation: link-interface FIFO depth vs Figure 12 "
                "==\n");
    std::printf("%12s %18s %18s\n", "FIFO words", "bidir MB/s (64KB)",
                "unidir MB/s (64KB)");

    const std::vector<unsigned> depths{8u, 16u, 32u, 64u, 128u, 256u};
    const auto report = sim::sweep::map(
        depths,
        [](unsigned fifoWords, const sim::sweep::Point &) {
            msg::SystemParams sp;
            sp.node = machines::powerManna();
            sp.fabric.clusters = 1;
            sp.fabric.nodesPerCluster = 2;
            sp.fabric.ni.fifoWords = fifoWords;
            msg::System sys(sp);

            // The driver bursts one FIFO's worth before switching.
            const double bi =
                msg::measureBidirectionalMBps(sys, 0, 1, 65536, 8);
            const double uni =
                msg::measureUnidirectionalMBps(sys, 0, 1, 65536, 8);
            std::string row;
            benchsup::appendf(
                row, "%12u %18.1f %18.1f%s\n", fifoWords, bi, uni,
                fifoWords == 32 ? "   <- hardware (paper)" : "");
            return row;
        },
        benchsup::options(argc, argv));
    if (const int rc = benchsup::emitRows(report))
        return rc;

    std::printf("\npaper check: bidirectional bandwidth grows with FIFO "
                "depth toward the 120 MB/s duplex capacity while the "
                "unidirectional rate stays wire-limited at 60\n");
    return 0;
}
