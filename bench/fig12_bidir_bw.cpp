/**
 * @file
 * Figure 12: simultaneous bidirectional bandwidth (both directions
 * summed) over message size, PowerMANNA (measured) vs BIP and FM.
 *
 * Paper shape: for short messages PowerMANNA is similar to BIP; for
 * long messages it falls well short of 2x its unidirectional rate —
 * the 32-word link-interface FIFOs force the driving CPU to switch
 * directions every 4 cache lines, and the switching overhead (all PIO)
 * eats the duplex capacity. The companion ablation bench
 * (ablation_fifo_depth) shows larger FIFOs recovering the loss, as the
 * paper suggests.
 */

#include <cstdio>

#include "baseline/usercomm.hh"
#include "machines/machines.hh"
#include "msg/probes.hh"
#include "sim/logging.hh"

int
main()
{
    pm::setInformEnabled(false);
    using namespace pm;

    msg::SystemParams sp;
    sp.node = machines::powerManna();
    sp.fabric.clusters = 1;
    sp.fabric.nodesPerCluster = 8;
    msg::System sys(sp);

    const auto bip = baseline::UserLevelCommModel::bip();
    const auto fm = baseline::UserLevelCommModel::fm();

    std::printf("== Figure 12: simultaneous bidirectional bandwidth "
                "(MB/s, both directions) ==\n");
    std::printf("%8s %12s %12s %12s\n", "bytes", "powermanna", "bip",
                "fm");
    for (unsigned bytes : {16u, 64u, 256u, 1024u, 4096u, 16384u, 65536u,
                           262144u}) {
        const unsigned count = bytes >= 16384 ? 12 : 32;
        const double pmBw =
            msg::measureBidirectionalMBps(sys, 0, 1, bytes, count);
        std::printf("%8u %12.1f %12.1f %12.1f\n", bytes, pmBw,
                    bip.bidirectionalMBps(bytes),
                    fm.bidirectionalMBps(bytes));
    }

    // The paper's diagnosis, quantified: unidirectional vs duplex.
    const double uni = msg::measureUnidirectionalMBps(sys, 0, 1, 65536, 12);
    const double bi = msg::measureBidirectionalMBps(sys, 0, 1, 65536, 12);
    std::printf("\npaper check (64 KB): unidirectional %.1f MB/s, "
                "bidirectional total %.1f MB/s (%.0f%% of the 2x%.0f "
                "duplex capacity) — the small-FIFO direction-switching "
                "loss\n",
                uni, bi, 100.0 * bi / (2.0 * uni), uni);
    return 0;
}
