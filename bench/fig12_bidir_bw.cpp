/**
 * @file
 * Figure 12: simultaneous bidirectional bandwidth (both directions
 * summed) over message size, PowerMANNA (measured) vs BIP and FM.
 *
 * Paper shape: for short messages PowerMANNA is similar to BIP; for
 * long messages it falls well short of 2x its unidirectional rate —
 * the 32-word link-interface FIFOs force the driving CPU to switch
 * directions every 4 cache lines, and the switching overhead (all PIO)
 * eats the duplex capacity. The companion ablation bench
 * (ablation_fifo_depth) shows larger FIFOs recovering the loss, as the
 * paper suggests.
 *
 * Every table row AND the two 64 KB diagnosis measurements are
 * pm::sim::sweep points with Systems of their own; `--jobs N` runs
 * them on N threads, byte-identically.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "baseline/usercomm.hh"
#include "machines/machines.hh"
#include "msg/probes.hh"
#include "msg/system.hh"
#include "sim/logging.hh"
#include "sweep_support.hh"

namespace {

using namespace pm;

msg::SystemParams
figParams()
{
    msg::SystemParams sp;
    sp.node = machines::powerManna();
    sp.fabric.clusters = 1;
    sp.fabric.nodesPerCluster = 8;
    return sp;
}

/** A table row, or one of the two trailing 64 KB diagnosis points. */
struct PointSpec
{
    unsigned bytes;
    bool unidirectional; //!< The diagnosis needs the unidir rate too.
};

struct PointResult
{
    std::string row; //!< Empty for the diagnosis points.
    double mbps = 0.0;
};

} // namespace

int
main(int argc, char **argv)
{
    pm::setInformEnabled(false);

    std::vector<PointSpec> points;
    for (unsigned bytes : {16u, 64u, 256u, 1024u, 4096u, 16384u, 65536u,
                           262144u})
        points.push_back({bytes, false});
    const std::size_t kDiagUni = points.size();
    points.push_back({65536u, true}); // diagnosis: unidirectional
    const std::size_t kDiagBi = points.size();
    points.push_back({65536u, false}); // diagnosis: bidirectional

    std::printf("== Figure 12: simultaneous bidirectional bandwidth "
                "(MB/s, both directions) ==\n");
    std::printf("%8s %12s %12s %12s\n", "bytes", "powermanna", "bip",
                "fm");
    const auto report = sim::sweep::map(
        points,
        [kDiagUni](const PointSpec &pt, const sim::sweep::Point &p) {
            msg::System sys(figParams());
            const unsigned count = pt.bytes >= 16384 ? 12 : 32;
            PointResult res;
            res.mbps =
                pt.unidirectional
                    ? msg::measureUnidirectionalMBps(sys, 0, 1,
                                                     pt.bytes, count)
                    : msg::measureBidirectionalMBps(sys, 0, 1,
                                                    pt.bytes, count);
            if (p.index < kDiagUni) {
                const auto bip = baseline::UserLevelCommModel::bip();
                const auto fm = baseline::UserLevelCommModel::fm();
                benchsup::appendf(res.row, "%8u %12.1f %12.1f %12.1f\n",
                                  pt.bytes, res.mbps,
                                  bip.bidirectionalMBps(pt.bytes),
                                  fm.bidirectionalMBps(pt.bytes));
            }
            return res;
        },
        benchsup::options(argc, argv));
    if (const int rc = benchsup::checkFailures(report))
        return rc;
    for (std::size_t i = 0; i < kDiagUni; ++i)
        std::fputs(report.results[i].row.c_str(), stdout);

    // The paper's diagnosis, quantified: unidirectional vs duplex.
    const double uni = report.results[kDiagUni].mbps;
    const double bi = report.results[kDiagBi].mbps;
    std::printf("\npaper check (64 KB): unidirectional %.1f MB/s, "
                "bidirectional total %.1f MB/s (%.0f%% of the 2x%.0f "
                "duplex capacity) — the small-FIFO direction-switching "
                "loss\n",
                uni, bi, 100.0 * bi / (2.0 * uni), uni);
    return 0;
}
