/**
 * @file
 * Extension bench: the partitioned conservative-parallel event kernel.
 *
 * Two halves:
 *
 *  1. Anchor guard — the Figure 9/11/12 paper anchors (2.746 us one-way
 *     latency at 8 bytes, 59.9 MB/s unidirectional at 16 KB, 85.7 MB/s
 *     bidirectional at 64 KB) must come out byte-identical on the
 *     classic kernel, the partitioned kernel at 1 thread, and the
 *     partitioned kernel at 4 threads. These are single-cluster
 *     machines, so the partitioned build degenerates to one domain and
 *     any drift here is a kernel bug, not a modelling change.
 *
 *  2. Speedup — a four-cluster ring of concurrent streams (every
 *     cluster sends to the next, all simultaneously, so all five
 *     partitions have work in every window) wall-clock timed at 1 vs 4
 *     worker threads. The simulated results must match exactly; only
 *     the host time may differ. Results go to BENCH_pkernel.json for
 *     the CI artifact.
 *
 * Exit is nonzero if any anchor drifts or any thread count disagrees
 * on the simulated outcome.
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "machines/machines.hh"
#include "msg/driver.hh"
#include "msg/probes.hh"
#include "msg/system.hh"
#include "sim/logging.hh"
#include "sweep_support.hh"

namespace {

using namespace pm;

msg::SystemParams
params(unsigned clusters, unsigned nodesPerCluster,
       unsigned kernelThreads)
{
    msg::SystemParams sp;
    sp.node = machines::powerManna();
    sp.fabric = machines::powerMannaFabric(clusters, nodesPerCluster);
    sp.kernelThreads = kernelThreads;
    return sp;
}

// ---- Anchor guard. --------------------------------------------------------

struct Anchors
{
    double latUs = 0.0; //!< Fig 9: 8-byte one-way latency.
    double uniMBps = 0.0; //!< Fig 11: 16 KB unidirectional.
    double biMBps = 0.0; //!< Fig 12: 64 KB bidirectional.
    std::string row;
};

Anchors
measureAnchors(unsigned kernelThreads)
{
    Anchors a;
    {
        // Same machine and order as ext_reliability's anchor point.
        msg::System sys(params(1, 2, kernelThreads));
        a.latUs = msg::measureOneWayLatencyUs(sys, 0, 1, 8);
        a.uniMBps = msg::measureUnidirectionalMBps(sys, 0, 1, 16384);
    }
    {
        // Same machine as fig12_bidir_bw's 64 KB row.
        msg::System sys(params(1, 8, kernelThreads));
        a.biMBps = msg::measureBidirectionalMBps(sys, 0, 1, 65536, 12);
    }
    benchsup::appendf(a.row, "%.3f %.1f %.1f", a.latUs, a.uniMBps,
                      a.biMBps);
    return a;
}

// ---- Four-cluster ring workload. ------------------------------------------

constexpr unsigned kClusters = 4;
// Every node streams, so each cluster partition executes
// kNodesPerCluster concurrent drivers per 0.2 us lookahead window —
// the denser the windows, the better the barrier cost amortizes
// across worker threads (the traffic itself is wire-rate-bound, so
// message size does not change per-window event density).
constexpr unsigned kNodesPerCluster = 4;
constexpr unsigned kMsgCount = 8; //!< Messages per stream.
constexpr std::uint64_t kMsgBytes = 4096;
constexpr unsigned kWindow = 8; //!< Sends in flight per stream.

struct WorkloadResult
{
    double wallMs = 0.0; //!< Host time (the only field allowed to vary).
    Tick simEnd = 0;
    std::uint64_t received = 0;
    std::uint64_t windows = 0;
    std::uint64_t crossPosts = 0;
};

WorkloadResult
runRing(unsigned kernelThreads)
{
    msg::System sys(params(kClusters, kNodesPerCluster, kernelThreads));
    sim::Context::Scope scope(sys.context());

    // One endpoint per node; node i of cluster c streams to node i of
    // cluster (c+1) % kClusters. All streams run concurrently, so
    // every cluster partition drives kNodesPerCluster senders and
    // receivers in every window while the hub partition routes
    // continuously.
    const unsigned kStreams = kClusters * kNodesPerCluster;
    std::vector<std::unique_ptr<msg::PmComm>> comms;
    for (unsigned n = 0; n < kStreams; ++n)
        comms.push_back(std::make_unique<msg::PmComm>(sys, n));

    std::vector<unsigned> issued(kStreams, 0);
    std::vector<unsigned> received(kStreams, 0);
    std::vector<std::function<void()>> sendNext(kStreams);
    std::function<void(unsigned)> armRecv = [&](unsigned n) {
        comms[n]->postRecv(
            [&, n](std::vector<std::uint64_t>, bool) {
                ++received[n];
                armRecv(n);
            });
    };
    for (unsigned n = 0; n < kStreams; ++n) {
        const unsigned cluster = n / kNodesPerCluster;
        const unsigned local = n % kNodesPerCluster;
        const unsigned dst =
            ((cluster + 1) % kClusters) * kNodesPerCluster + local;
        sendNext[n] = [&, n, dst] {
            if (issued[n] >= kMsgCount)
                return;
            const unsigned seq = issued[n]++;
            comms[n]->postSend(dst,
                               msg::makePayload(kMsgBytes, seq),
                               [&, n] { sendNext[n](); });
        };
        armRecv(n);
    }
    for (unsigned w = 0; w < kWindow; ++w)
        for (unsigned n = 0; n < kStreams; ++n)
            sendNext[n]();

    // Perpetually re-armed receives keep the drivers polling (and the
    // queues non-empty) forever, so termination must be explicit: run
    // to the delivery target, then drain the trailing ACK handshakes
    // and the wires like the probes do.
    const auto allReceived = [&] {
        for (unsigned n = 0; n < kStreams; ++n)
            if (received[n] < kMsgCount)
                return false;
        return true;
    };
    const auto allQuiet = [&] {
        for (const auto &comm : comms)
            if (!comm->quiescent())
                return false;
        return sys.fabric().wireQuiet();
    };
    // pmlint: banned-ok(wall-clock speedup is what this bench measures)
    const auto t0 = std::chrono::steady_clock::now();
    while (!allReceived() && sys.pump() != 0) {
    }
    while (!allQuiet() && sys.pump() != 0) {
    }
    // pmlint: banned-ok(wall-clock speedup is what this bench measures)
    const auto t1 = std::chrono::steady_clock::now();

    WorkloadResult res;
    res.wallMs =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    res.simEnd = sys.simNow();
    for (unsigned n = 0; n < kStreams; ++n) {
        if (received[n] != kMsgCount)
            pm_panic("ext_pkernel: stream %u delivered %u/%u messages",
                     n, received[n], kMsgCount);
        res.received += received[n];
    }
    res.windows = sys.kernel().windows();
    res.crossPosts = sys.kernel().crossPosts();
    return res;
}

} // namespace

int
main(int argc, char **argv)
{
    (void)argc;
    (void)argv;
    pm::setInformEnabled(false);

    // ---- Anchors at classic / 1 thread / 4 threads. ----
    std::printf("== ext_pkernel: anchors (fig9 us / fig11 MB/s / "
                "fig12 MB/s) ==\n");
    const Anchors classic = measureAnchors(0);
    const Anchors one = measureAnchors(1);
    const Anchors four = measureAnchors(4);
    std::printf("  classic         : %s\n", classic.row.c_str());
    std::printf("  kernel-threads 1: %s\n", one.row.c_str());
    std::printf("  kernel-threads 4: %s\n", four.row.c_str());
    if (one.row != classic.row || four.row != classic.row) {
        std::fprintf(stderr, "ext_pkernel: anchors drift across kernel "
                             "thread counts\n");
        return 1;
    }
    const auto off = [](double v, double paper) {
        return v < paper * 0.99 || v > paper * 1.01;
    };
    if (off(classic.latUs, 2.746) || off(classic.uniMBps, 59.9) ||
        off(classic.biMBps, 85.7)) {
        std::fprintf(stderr, "ext_pkernel: anchors off the paper values "
                             "(2.746 / 59.9 / 85.7): %s\n",
                     classic.row.c_str());
        return 1;
    }

    // ---- Four-cluster ring at 1 vs 4 worker threads. ----
    std::printf("\n== ext_pkernel: 4-cluster ring, %u x %u msg x %llu B "
                "==\n",
                kClusters, kMsgCount,
                (unsigned long long)kMsgBytes);
    const WorkloadResult w1 = runRing(1);
    const WorkloadResult w4 = runRing(4);
    if (w1.simEnd != w4.simEnd || w1.received != w4.received ||
        w1.windows != w4.windows || w1.crossPosts != w4.crossPosts) {
        std::fprintf(stderr,
                     "ext_pkernel: simulated outcome differs across "
                     "thread counts (simEnd %llu vs %llu)\n",
                     (unsigned long long)w1.simEnd,
                     (unsigned long long)w4.simEnd);
        return 1;
    }
    const double speedup = w4.wallMs > 0.0 ? w1.wallMs / w4.wallMs : 0.0;
    const unsigned hw = std::thread::hardware_concurrency();
    std::printf("  1 thread : %8.1f ms wall, sim end %.1f us\n",
                w1.wallMs, ticksToUs(w1.simEnd));
    std::printf("  4 threads: %8.1f ms wall (identical simulation)\n",
                w4.wallMs);
    std::printf("  speedup  : %.2fx on a %u-thread host; windows %llu, "
                "cross-partition events %llu\n",
                speedup, hw, (unsigned long long)w1.windows,
                (unsigned long long)w1.crossPosts);

    // ---- BENCH_pkernel.json for the CI artifact. ----
    FILE *json = std::fopen("BENCH_pkernel.json", "w");
    if (json == nullptr) {
        std::fprintf(stderr, "ext_pkernel: cannot write "
                             "BENCH_pkernel.json\n");
        return 1;
    }
    std::fprintf(
        json,
        "{\n"
        "  \"anchors\": {\n"
        "    \"fig9_latency_us\": %.3f,\n"
        "    \"fig11_unidir_mbps\": %.1f,\n"
        "    \"fig12_bidir_mbps\": %.1f,\n"
        "    \"identical_at_kernel_threads\": [0, 1, 4]\n"
        "  },\n"
        "  \"ring\": {\n"
        "    \"clusters\": %u,\n"
        "    \"messages_per_stream\": %u,\n"
        "    \"message_bytes\": %llu,\n"
        "    \"sim_end_us\": %.3f,\n"
        "    \"windows\": %llu,\n"
        "    \"cross_partition_events\": %llu,\n"
        "    \"wall_ms_threads1\": %.3f,\n"
        "    \"wall_ms_threads4\": %.3f,\n"
        "    \"speedup\": %.3f,\n"
        "    \"host_hardware_threads\": %u\n"
        "  }\n"
        "}\n",
        classic.latUs, classic.uniMBps, classic.biMBps, kClusters,
        kMsgCount, (unsigned long long)kMsgBytes,
        ticksToUs(w1.simEnd), (unsigned long long)w1.windows,
        (unsigned long long)w1.crossPosts, w1.wallMs, w4.wallMs,
        speedup, hw);
    std::fclose(json);
    std::printf("  wrote BENCH_pkernel.json\n");
    return 0;
}
