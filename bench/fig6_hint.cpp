/**
 * @file
 * Figure 6: HINT QUIPS-over-time curves for data types DOUBLE and INT
 * on the four node configurations (PowerMANNA, SUN, PC at 180 MHz and
 * at 266 MHz).
 *
 * Paper shape to reproduce:
 *  - every curve rises while the working set sits in the caches, then
 *    steps down as L1 and later L2 are exhausted, memory access
 *    ultimately dominating;
 *  - DOUBLE: PowerMANNA slightly better than the reduced-clock PC in
 *    the cache region, the PC better in the memory region (load
 *    pipelining + less superfluous prefetch traffic);
 *  - INT: PowerMANNA and PC about equal, both above the SUN;
 *  - PowerMANNA/PC do better on INT than DOUBLE; the SUN is lower.
 */

#include <cstdio>
#include <vector>

#include "machines/machines.hh"
#include "node/node.hh"
#include "sim/logging.hh"
#include "workloads/runner.hh"

int
main()
{
    pm::setInformEnabled(false);
    using namespace pm;
    using workloads::HintParams;
    using workloads::HintType;

    const auto configs = machines::allNodeConfigs();

    for (HintType type : {HintType::Double, HintType::Int}) {
        const bool dbl = type == HintType::Double;
        std::printf("\n== Figure 6%s: HINT %s — QUIPS (millions) over "
                    "working set ==\n",
                    dbl ? "a" : "b", dbl ? "DOUBLE" : "INT");
        std::printf("%12s %10s", "wset", "m");
        for (const auto &c : configs)
            std::printf(" %12s", c.name.c_str());
        std::printf("\n");

        // Run the sweep once per machine, then print row-per-size.
        std::vector<std::vector<workloads::HintPoint>> curves;
        for (const auto &cfg : configs) {
            node::Node node(cfg);
            HintParams hp;
            hp.type = type;
            hp.minLog2m = 9;
            hp.maxLog2m = 20;
            curves.push_back(workloads::runHint(node, hp));
        }

        for (std::size_t row = 0; row < curves[0].size(); ++row) {
            const auto &ref = curves[0][row];
            std::printf("%10lluKB %10llu",
                        (unsigned long long)(ref.workingSetBytes / 1024),
                        (unsigned long long)ref.subintervals);
            for (const auto &curve : curves)
                std::printf(" %12.2f", curve[row].quips() / 1e6);
            std::printf("\n");
        }

        std::printf("-- elapsed per size (us), for the time axis --\n");
        std::printf("%12s %10s", "wset", "m");
        for (const auto &c : configs)
            std::printf(" %12s", c.name.c_str());
        std::printf("\n");
        for (std::size_t row = 0; row < curves[0].size(); ++row) {
            const auto &ref = curves[0][row];
            std::printf("%10lluKB %10llu",
                        (unsigned long long)(ref.workingSetBytes / 1024),
                        (unsigned long long)ref.subintervals);
            for (const auto &curve : curves)
                std::printf(" %12.1f", ticksToUs(curve[row].elapsed));
            std::printf("\n");
        }
    }
    return 0;
}
