/**
 * @file
 * Extension bench (paper Section 7 / [18]): EARTH-MANNA-style
 * fine-grain operation overheads on PowerMANNA.
 *
 * The paper argues the lightweight NI plus user-level protocols make
 * PowerMANNA a good EARTH host ("EARTH is currently being ported to
 * the PowerMANNA machine"); [18] characterizes EARTH by the cost of
 * its primitive operations. This bench measures those primitives on
 * the simulated machine: local fiber dispatch, local/remote syncs,
 * split-phase GET/PUT, remote invocation, and a fine-grain token ring.
 */

#include <cstdio>

#include "earth/runtime.hh"
#include "machines/machines.hh"
#include "msg/probes.hh"
#include "msg/system.hh"
#include "sim/logging.hh"

namespace {

using namespace pm;
using namespace pm::earth;

msg::SystemParams
clusterParams()
{
    msg::SystemParams sp;
    sp.node = machines::powerManna();
    sp.fabric.clusters = 1;
    sp.fabric.nodesPerCluster = 8;
    return sp;
}

double
localFiberCost(msg::System &sys)
{
    Runtime rt(sys);
    constexpr unsigned kFibers = 256;
    unsigned left = kFibers;
    std::function<void(NodeRt &)> chain = [&](NodeRt &self) {
        if (--left > 0)
            self.spawnLocal(chain);
    };
    rt.node(0).spawnLocal(chain);
    return ticksToUs(rt.run()) / kFibers;
}

double
localSyncCost(msg::System &sys)
{
    Runtime rt(sys);
    constexpr unsigned kSyncs = 256;
    auto &n0 = rt.node(0);
    const SlotRef slot = n0.makeSlot(kSyncs, [](NodeRt &) {});
    n0.spawnLocal([slot](NodeRt &self) {
        for (unsigned i = 0; i < kSyncs; ++i)
            self.sync(slot);
    });
    return ticksToUs(rt.run()) / kSyncs;
}

double
remoteSyncCost(msg::System &sys)
{
    Runtime rt(sys);
    constexpr unsigned kRounds = 32;
    unsigned left = kRounds;
    // Ping-pong of SYNC tokens between slots on nodes 0 and 1.
    std::function<void(unsigned)> arm = [&](unsigned onNode) {
        rt.node(onNode).spawnLocal([&, onNode](NodeRt &) {
            if (left-- == 0)
                return;
            const unsigned peer = 1 - onNode;
            const SlotRef s = rt.node(peer).makeSlot(
                1, [&, peer](NodeRt &) { arm(peer); });
            rt.node(onNode).sync(s);
        });
    };
    arm(0);
    return ticksToUs(rt.run()) / kRounds;
}

double
getRoundTrip(msg::System &sys)
{
    Runtime rt(sys);
    rt.node(1).spawnLocal([](NodeRt &self) {
        self.storeLocal(0x80, 7);
    });
    rt.run();
    constexpr unsigned kGets = 32;
    unsigned left = kGets;
    // Local, not static: rt.run() drains every get before this frame
    // returns, and a static here would leak state across sweep points.
    std::uint64_t sink = 0;
    std::function<void(NodeRt &)> again = [&](NodeRt &self) {
        if (left-- == 0)
            return;
        const SlotRef s = rt.node(0).makeSlot(1, again);
        self.getRemote(1, 0x80, &sink, s);
    };
    rt.node(0).spawnLocal(again);
    return ticksToUs(rt.run()) / kGets;
}

double
invokeCost(msg::System &sys)
{
    Runtime rt(sys);
    constexpr unsigned kHops = 64;
    rt.registerFunction(
        1, [&](NodeRt &self, const std::vector<std::uint64_t> &args) {
            if (args[0] == 0)
                return;
            self.invokeRemote((self.nodeId() + 1) % 8, 1, {args[0] - 1});
        });
    rt.node(0).spawnLocal([](NodeRt &self) {
        self.invokeRemote(1, 1, {kHops});
    });
    return ticksToUs(rt.run()) / kHops;
}

} // namespace

int
main()
{
    setInformEnabled(false);
    msg::System sys(clusterParams());

    std::printf("== Extension: EARTH-style fine-grain overheads on "
                "PowerMANNA (Section 7 / [18]) ==\n");
    std::printf("%-42s %10.3f us\n", "local fiber spawn + dispatch",
                localFiberCost(sys));
    std::printf("%-42s %10.3f us\n", "local sync-slot update",
                localSyncCost(sys));
    std::printf("%-42s %10.3f us\n", "remote SYNC (one-way, inc. fiber)",
                remoteSyncCost(sys));
    const double get = getRoundTrip(sys);
    std::printf("%-42s %10.3f us\n", "split-phase GET_SYNC round trip",
                get);
    std::printf("%-42s %10.3f us\n", "remote INVOKE (one hop of a ring)",
                invokeCost(sys));

    const double msgLat = msg::measureOneWayLatencyUs(sys, 0, 1, 40, 4);
    std::printf("\nreference: message-layer one-way latency for a "
                "token-sized (40 B) message: %.2f us\n",
                msgLat);
    std::printf("GET round trip / 2 = %.2f us vs %.2f us: the runtime "
                "adds only handler/dispatch overhead on top of the "
                "lightweight NI — the property [18] exploited on "
                "MANNA\n",
                get / 2, msgLat);
    return 0;
}
