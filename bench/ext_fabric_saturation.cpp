/**
 * @file
 * Extension bench: interconnect saturation under uniform-random
 * synthetic traffic (Garnet-style), on the Figure 5a cluster and on a
 * two-cabinet system. Sweeps offered load per node and reports
 * delivered throughput and end-to-end latency — the load/latency curve
 * the paper's blocking-behaviour citations ([5], [6]) reason about.
 *
 * Injectors drive the link interfaces directly (no PIO driver), so
 * this isolates the fabric: links, crossbar arbitration, transceivers.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "fabric/injector.hh"
#include "fabric/topology.hh"
#include "sim/event.hh"
#include "sim/logging.hh"

namespace {

using namespace pm;
using namespace pm::net;
using namespace pm::fabric;

void
sweep(unsigned clusters, unsigned nodesPerCluster)
{
    std::printf("\n-- %u cabinet%s, %u nodes, uniform random, 64 B "
                "payloads --\n",
                clusters, clusters > 1 ? "s" : "",
                clusters * nodesPerCluster);
    std::printf("%16s %18s %14s %14s %12s\n", "offered/node",
                "delivered total", "mean lat", "max lat", "throttled");

    for (double offered : {5.0, 15.0, 30.0, 45.0, 55.0}) {
        sim::EventQueue queue;
        FabricParams fp;
        fp.clusters = clusters;
        fp.nodesPerCluster = nodesPerCluster;
        fp.uplinksPerCluster = clusters > 1 ? 8 : 0;
        fp.networks = 1;
        Fabric fabric(fp, queue);
        Drain drain(fabric, queue);

        std::vector<std::unique_ptr<Injector>> injectors;
        InjectorParams ip;
        ip.offeredMBps = offered;
        ip.payloadWords = 8; // 64 B messages
        constexpr Tick kRun = 3 * kTicksPerMs;
        for (unsigned n = 0; n < fabric.numNodes(); ++n) {
            ip.seed = n + 1;
            injectors.push_back(
                std::make_unique<Injector>(fabric, queue, n, ip));
            injectors.back()->start(kRun);
        }
        // Run generation + a drain tail, then stop the poller.
        queue.run(kRun + 200 * kTicksPerUs);
        drain.stop();
        queue.run();

        double sentTotal = 0;
        double throttledTotal = 0;
        for (auto &inj : injectors) {
            sentTotal += inj->sent.value();
            throttledTotal += inj->throttled.value();
        }
        const double ms = ticksToUs(kRun) / 1000.0;
        const double deliveredMBps =
            drain.received() * 64.0 / (ms * 1000.0);
        std::printf("%13.0f MB/s %13.1f MB/s %11.2f us %11.2f us %12.0f\n",
                    offered, deliveredMBps,
                    ticksToUs(static_cast<Tick>(drain.latency().mean())),
                    ticksToUs(static_cast<Tick>(drain.latency().max())),
                    throttledTotal);
        if (drain.received() == 0 && sentTotal > 0)
            pm_panic("fabric lost all traffic");
    }
}

} // namespace

int
main()
{
    setInformEnabled(false);
    std::printf("== Extension: fabric saturation under synthetic "
                "traffic ==\n");
    sweep(1, 8);
    sweep(2, 8);
    std::printf("\nexpected shape: delivered tracks offered until the "
                "60 MB/s links and crossbar arbitration saturate "
                "(~28 MB/s/node for 64 B messages: command, header and "
                "CRC overhead plus ejection-link contention); latency "
                "rises steeply near the knee; with 8 uplinks per "
                "cabinet the two-cabinet system scales per-node "
                "throughput, paying ~0.6 us extra latency for the "
                "3-crossbar + transceiver path\n");
    return 0;
}
