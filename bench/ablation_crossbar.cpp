/**
 * @file
 * Ablation/verification benches for the interconnect claims of
 * Section 3:
 *
 *  1. Through-routing: a route command sets up a connection in 0.2 us
 *     when there are no collisions (3.1) — measured as the marginal
 *     first-word latency per extra crossbar on the path.
 *  2. Path length: in the 256-processor configuration of Figure 5b, a
 *     logical connection between any two nodes involves at most three
 *     crossbars.
 *  3. Blocking behaviour: random permutation traffic through one 16x16
 *     crossbar vs the route-conflict rate — the crossbar's "favorable
 *     blocking behaviour" vs an (emulated) shared-medium interconnect.
 *
 * The two standalone studies and the three blocking flow counts are
 * five pm::sim::sweep points, each rendering its output off-thread
 * into a string; `--jobs N` runs them concurrently and the blocks are
 * printed in section order after the join, byte-identically.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "machines/machines.hh"
#include "msg/probes.hh"
#include "msg/system.hh"
#include "fabric/topology.hh"
#include "sim/event.hh"
#include "sim/logging.hh"
#include "sweep_support.hh"

namespace {

using namespace pm;

/** Latency measured intra-cluster (1 crossbar) vs inter-cluster (3). */
std::string
throughRouting()
{
    msg::SystemParams sp;
    sp.node = machines::powerManna();
    sp.fabric.clusters = 2;
    sp.fabric.nodesPerCluster = 8;
    sp.fabric.uplinksPerCluster = 4;
    msg::System sys(sp);

    const double oneXbar = msg::measureOneWayLatencyUs(sys, 0, 1, 8, 8);
    const double threeXbar = msg::measureOneWayLatencyUs(sys, 0, 9, 8, 8);
    // The inter-cluster path adds 2 crossbars and 2 transceiver hops.
    const double xcvrUs =
        2.0 * ticksToUs(sp.fabric.xcvr.cableLatency);
    const double perXbarUs = (threeXbar - oneXbar - xcvrUs) / 2.0;

    std::string out;
    benchsup::appendf(out, "-- through-routing --\n");
    benchsup::appendf(out,
                      "1-crossbar path (intra-cluster): %.2f us\n",
                      oneXbar);
    benchsup::appendf(out,
                      "3-crossbar path (inter-cluster): %.2f us\n",
                      threeXbar);
    benchsup::appendf(
        out,
        "marginal cost per crossbar (cables excluded): %.2f us "
        "(paper: ~0.2 us setup + one store-and-forward FIFO)\n",
        perXbarUs);
    return out;
}

/** Figure 5b: 128 nodes / 256 processors, max three crossbars. */
std::string
pathLengths()
{
    sim::EventQueue queue;
    fabric::FabricParams fp;
    fp.clusters = 16;
    fp.nodesPerCluster = 8;
    fp.uplinksPerCluster = 8;
    fp.networks = 2;
    fabric::Fabric fabric(fp, queue);

    unsigned maxLen = 0;
    std::uint64_t pairs = 0;
    double sum = 0.0;
    for (unsigned s = 0; s < fabric.numNodes(); ++s) {
        for (unsigned d = 0; d < fabric.numNodes(); ++d) {
            if (s == d)
                continue;
            const unsigned len = fabric.crossbarsOnPath(s, d);
            const auto route = fabric.route(s, d);
            if (len != route.size())
                pm_panic("route length mismatch");
            maxLen = std::max(maxLen, len);
            sum += len;
            ++pairs;
        }
    }
    std::string out;
    benchsup::appendf(out,
                      "\n-- Figure 5b path lengths (128 nodes / 256 "
                      "CPUs) --\n");
    benchsup::appendf(out,
                      "all %llu ordered pairs: max %u crossbars (paper: "
                      "at most 3), mean %.2f\n",
                      (unsigned long long)pairs, maxLen, sum / pairs);
    return out;
}

/** Random permutation traffic: conflicts in one 16x16 crossbar. */
std::string
blockingRow(unsigned flows)
{
    msg::SystemParams sp;
    sp.node = machines::powerManna();
    sp.fabric.clusters = 1;
    sp.fabric.nodesPerCluster = 8;
    msg::System sys(sp);
    sys.resetForRun();

    // Disjoint pairs (a permutation): crossbar should not block.
    std::vector<std::unique_ptr<msg::PmComm>> comms;
    for (unsigned n = 0; n < 8; ++n)
        comms.push_back(std::make_unique<msg::PmComm>(sys, n));

    const unsigned bytes = 16384;
    const unsigned count = 4;
    unsigned received = 0;
    const Tick start = sys.queue().now();
    for (unsigned f = 0; f < flows; ++f) {
        const unsigned src = 2 * f;
        const unsigned dst = 2 * f + 1;
        auto payload = msg::makePayload(bytes, f);
        for (unsigned i = 0; i < count; ++i) {
            comms[src]->postSend(dst, payload);
            comms[dst]->postRecv(
                [&](std::vector<std::uint64_t>, bool ok) {
                    if (!ok)
                        pm_panic("CRC failure");
                    ++received;
                });
        }
    }
    while (received < flows * count && sys.queue().step()) {
    }
    const double us = ticksToUs(sys.queue().now() - start);
    const double agg = double(bytes) * flows * count / us;
    std::string out;
    benchsup::appendf(out, "%10u %16.1f %16.1f\n", flows, agg,
                      agg / flows);
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    pm::setInformEnabled(false);
    std::printf("== Ablation: crossbar properties (Section 3) ==\n");

    const std::vector<unsigned> kFlows{1u, 2u, 4u};
    constexpr std::size_t kThrough = 0;
    constexpr std::size_t kPaths = 1;
    constexpr std::size_t kFirstFlow = 2;

    const auto report = pm::sim::sweep::run(
        kFirstFlow + kFlows.size(),
        [&](const pm::sim::sweep::Point &pt) {
            if (pt.index == kThrough)
                return throughRouting();
            if (pt.index == kPaths)
                return pathLengths();
            return blockingRow(kFlows[pt.index - kFirstFlow]);
        },
        pm::benchsup::options(argc, argv));
    if (const int rc = pm::benchsup::checkFailures(report))
        return rc;

    std::fputs(report.results[kThrough].c_str(), stdout);
    std::fputs(report.results[kPaths].c_str(), stdout);

    std::printf("\n-- blocking behaviour: 8-node cluster, random "
                "pairings --\n");
    std::printf("%10s %16s %16s\n", "flows", "agg MB/s", "per-flow MB/s");
    for (std::size_t i = 0; i < kFlows.size(); ++i)
        std::fputs(report.results[kFirstFlow + i].c_str(), stdout);
    std::printf("disjoint flows scale linearly: the crossbar does not "
                "block permutation traffic (unlike a shared medium)\n");
    return 0;
}
