/**
 * @file
 * The Section 2 design study [4], reproduced as an ablation: how many
 * MPC620 processors does the PowerMANNA node design support before
 * they hinder one another — and is the limiting factor the node-memory
 * bandwidth or the snooped address phase?
 *
 * Paper claim: "the actual node design would support up to four
 * processors without their significantly hindering one another... the
 * limiting factor is not the bandwidth of the node memory (thanks to
 * its efficient implementation) but the sequentialization of the
 * address phases enforced by the snoop protocol of the MPC620."
 *
 * We run N independent MatMult instances on an N-processor node
 * (memory-streaming, transposed version), then repeat with the
 * address-phase cost ablated to zero — if efficiency recovers, the
 * address phase was the binding constraint.
 */

#include <cstdio>

#include "cpu/sched.hh"
#include "machines/machines.hh"
#include "node/node.hh"
#include "sim/logging.hh"
#include "workloads/stream.hh"

namespace {

using namespace pm;

/** Aggregate streamed MB/s with `active` of the node's CPUs sweeping
 *  disjoint regions. */
double
streamMBps(const node::NodeParams &cfg, unsigned active)
{
    node::Node node(cfg);
    node.reset();
    std::vector<std::unique_ptr<workloads::MemStream>> works;
    std::vector<cpu::Job> jobs;
    for (unsigned c = 0; c < active; ++c) {
        workloads::MemStreamParams p;
        p.base = 0x1000'0000 + Addr(c) * 0x0084'3000;
        p.bytes = 4ull * 1024 * 1024;
        p.passes = 1;
        works.push_back(std::make_unique<workloads::MemStream>(p));
        jobs.push_back(cpu::Job{&node.proc(c), works.back().get()});
    }
    cpu::runJobs(jobs);
    Tick elapsed = 0;
    std::uint64_t bytes = 0;
    for (unsigned c = 0; c < active; ++c) {
        elapsed = std::max(elapsed, node.proc(c).time());
        bytes += works[c]->bytesDone();
    }
    return static_cast<double>(bytes) / ticksToUs(elapsed);
}

} // namespace

int
main()
{
    pm::setInformEnabled(false);
    using namespace pm;

    std::printf("== Ablation: node scalability (design study [4]) ==\n");
    std::printf("per-processor 4 MB memory sweeps (STREAM-like); "
                "parallel efficiency vs 1 CPU\n\n");
    std::printf("aggregate streamed MB/s (and efficiency of the "
                "designed node vs linear scaling)\n");
    std::printf("%6s %11s %6s %15s %17s\n", "cpus", "designed", "eff",
                "fixed 4 banks", "free addr phase");
    double designed1 = 0.0;

    for (unsigned cpus = 1; cpus <= 6; ++cpus) {
        // The "designed node": memory interleave grows with the
        // processor count, as the paper's "efficient implementation"
        // of the node memory would provide. What remains fixed by the
        // MPC620 protocol is the serialized snooped address phase.
        node::NodeParams designed = machines::powerMannaN(cpus);
        designed.dram.banks = 16; // generous interleave at every size
        designed.bus.dataWidthBytes = 32; // wider memory data path

        node::NodeParams fixedMem = machines::powerMannaN(cpus); // 4 banks

        node::NodeParams freeAddr = designed;
        freeAddr.bus.addrCycles = 0; // ablate snoop serialization
        freeAddr.bus.snoopCycles = 0;

        const double d = streamMBps(designed, cpus);
        if (cpus == 1)
            designed1 = d;
        std::printf("%6u %11.0f %5.0f%% %15.0f %17.0f\n", cpus, d,
                    100.0 * d / (cpus * designed1),
                    streamMBps(fixedMem, cpus),
                    streamMBps(freeAddr, cpus));
    }

    std::printf("\npaper check: the designed node stays efficient "
                "through 4 CPUs and droops beyond; with memory "
                "interleave scaled, the droop is the snooped address "
                "phase (ablating it restores efficiency) -- 'the "
                "limiting factor is not the bandwidth of the node "
                "memory... but the sequentialization of the address "
                "phases'\n");
    return 0;
}
