/**
 * @file
 * The Section 2 design study [4], reproduced as an ablation: how many
 * MPC620 processors does the PowerMANNA node design support before
 * they hinder one another — and is the limiting factor the node-memory
 * bandwidth or the snooped address phase?
 *
 * Paper claim: "the actual node design would support up to four
 * processors without their significantly hindering one another... the
 * limiting factor is not the bandwidth of the node memory (thanks to
 * its efficient implementation) but the sequentialization of the
 * address phases enforced by the snoop protocol of the MPC620."
 *
 * We run N independent MatMult instances on an N-processor node
 * (memory-streaming, transposed version), then repeat with the
 * address-phase cost ablated to zero — if efficiency recovers, the
 * address phase was the binding constraint.
 *
 * Each processor count is one pm::sim::sweep point (with three Node
 * simulations of its own); `--jobs N` fans the six counts out over N
 * threads. The efficiency column depends on the 1-CPU result, so rows
 * are rendered after the join, from the collected numbers.
 */

#include <cstdio>
#include <vector>

#include "cpu/sched.hh"
#include "machines/machines.hh"
#include "node/node.hh"
#include "sim/logging.hh"
#include "sweep_support.hh"
#include "workloads/stream.hh"

namespace {

using namespace pm;

/** Aggregate streamed MB/s with `active` of the node's CPUs sweeping
 *  disjoint regions. */
double
streamMBps(const node::NodeParams &cfg, unsigned active)
{
    node::Node node(cfg);
    node.reset();
    std::vector<std::unique_ptr<workloads::MemStream>> works;
    std::vector<cpu::Job> jobs;
    for (unsigned c = 0; c < active; ++c) {
        workloads::MemStreamParams p;
        p.base = 0x1000'0000 + Addr(c) * 0x0084'3000;
        p.bytes = 4ull * 1024 * 1024;
        p.passes = 1;
        works.push_back(std::make_unique<workloads::MemStream>(p));
        jobs.push_back(cpu::Job{&node.proc(c), works.back().get()});
    }
    cpu::runJobs(jobs);
    Tick elapsed = 0;
    std::uint64_t bytes = 0;
    for (unsigned c = 0; c < active; ++c) {
        elapsed = std::max(elapsed, node.proc(c).time());
        bytes += works[c]->bytesDone();
    }
    return static_cast<double>(bytes) / ticksToUs(elapsed);
}

/** The three configurations measured at one processor count. */
struct PointResult
{
    double designed;
    double fixedMem;
    double freeAddr;
};

PointResult
runPoint(unsigned cpus)
{
    // The "designed node": memory interleave grows with the
    // processor count, as the paper's "efficient implementation"
    // of the node memory would provide. What remains fixed by the
    // MPC620 protocol is the serialized snooped address phase.
    node::NodeParams designed = machines::powerMannaN(cpus);
    designed.dram.banks = 16; // generous interleave at every size
    designed.bus.dataWidthBytes = 32; // wider memory data path

    node::NodeParams fixedMem = machines::powerMannaN(cpus); // 4 banks

    node::NodeParams freeAddr = designed;
    freeAddr.bus.addrCycles = 0; // ablate snoop serialization
    freeAddr.bus.snoopCycles = 0;

    return PointResult{streamMBps(designed, cpus),
                       streamMBps(fixedMem, cpus),
                       streamMBps(freeAddr, cpus)};
}

} // namespace

int
main(int argc, char **argv)
{
    pm::setInformEnabled(false);
    using namespace pm;

    std::printf("== Ablation: node scalability (design study [4]) ==\n");
    std::printf("per-processor 4 MB memory sweeps (STREAM-like); "
                "parallel efficiency vs 1 CPU\n\n");
    std::printf("aggregate streamed MB/s (and efficiency of the "
                "designed node vs linear scaling)\n");
    std::printf("%6s %11s %6s %15s %17s\n", "cpus", "designed", "eff",
                "fixed 4 banks", "free addr phase");

    const std::vector<unsigned> counts{1u, 2u, 3u, 4u, 5u, 6u};
    const auto report = sim::sweep::map(
        counts,
        [](unsigned cpus, const sim::sweep::Point &) {
            return runPoint(cpus);
        },
        benchsup::options(argc, argv));
    if (const int rc = benchsup::checkFailures(report))
        return rc;

    const double designed1 = report.results[0].designed;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        const unsigned cpus = counts[i];
        const PointResult &r = report.results[i];
        std::printf("%6u %11.0f %5.0f%% %15.0f %17.0f\n", cpus,
                    r.designed, 100.0 * r.designed / (cpus * designed1),
                    r.fixedMem, r.freeAddr);
    }

    std::printf("\npaper check: the designed node stays efficient "
                "through 4 CPUs and droops beyond; with memory "
                "interleave scaled, the droop is the snooped address "
                "phase (ablating it restores efficiency) -- 'the "
                "limiting factor is not the bandwidth of the node "
                "memory... but the sequentialization of the address "
                "phases'\n");
    return 0;
}
