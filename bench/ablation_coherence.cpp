/**
 * @file
 * Ablation: the memory-hierarchy policy matrix over the node design
 * study — 2/4/8 processors x {broadcast snoop, sparse directory} x
 * {MESI, MSI} (DESIGN.md §14).
 *
 * Two halves:
 *
 *  1. Anchor guard — the default configuration (2-way MESI/LRU node
 *     under broadcast snooping) must still reproduce the paper: Fig 9
 *     (2.746 us one-way latency at 8 B), Fig 11 (59.9 MB/s unidir at
 *     16 KB), Fig 12 (85.7 MB/s bidir at 64 KB), each within 1%. The
 *     policy seams are refactoring, not remodelling; drift here is a
 *     bug, and the exit code says so.
 *
 *  2. The matrix — every node runs the same mixed workload (streaming
 *     misses + private read-modify-write + a read-shared block) on the
 *     "designed node" memory system of ablation_node_scaling, so the
 *     serialized snooped address phase is what binds at 8 processors.
 *     The paper names that serialization as the >4-processor limiter;
 *     the directory transport replaces it with banked lookups that
 *     probe true sharers only, and the MESI/MSI axis prices the E
 *     state (MSI pays a bus upgrade for every store to clean data).
 *
 * Results go to BENCH_coherence.json for the CI artifact. Exit is
 * nonzero if an anchor drifts, if the directory fails to reduce
 * coherence-phase occupancy at 4 and 8 processors, or if MSI fails to
 * pay more upgrades than MESI.
 */

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "cpu/sched.hh"
#include "cpu/workload.hh"
#include "machines/machines.hh"
#include "msg/probes.hh"
#include "msg/system.hh"
#include "node/node.hh"
#include "sim/logging.hh"

namespace {

using namespace pm;

// ---- Anchor guard. --------------------------------------------------------

struct Anchors
{
    double latUs = 0.0;
    double uniMBps = 0.0;
    double biMBps = 0.0;
};

Anchors
measureAnchors()
{
    Anchors a;
    {
        msg::SystemParams sp;
        sp.node = machines::powerManna();
        sp.fabric = machines::powerMannaFabric(1, 2);
        msg::System sys(sp);
        a.latUs = msg::measureOneWayLatencyUs(sys, 0, 1, 8);
        a.uniMBps = msg::measureUnidirectionalMBps(sys, 0, 1, 16384);
    }
    {
        msg::SystemParams sp;
        sp.node = machines::powerManna();
        sp.fabric = machines::powerMannaFabric(1, 8);
        msg::System sys(sp);
        a.biMBps = msg::measureBidirectionalMBps(sys, 0, 1, 65536, 12);
    }
    return a;
}

// ---- The matrix workload. -------------------------------------------------

/**
 * The coherence mix, per 4 KB step: stream one block (capacity misses
 * that occupy the coherence phase), read-modify-write eight fresh
 * private lines (first store to clean data — silent under MESI's E,
 * a bus upgrade under MSI), and re-read one line of a block all
 * processors share (multi-sharer directory entries; harmless snoops).
 */
class CoherenceMix : public cpu::Workload
{
  public:
    CoherenceMix(Addr streamBase, Addr rmwBase, Addr sharedBase,
                 std::uint64_t streamBytes)
        : _streamBase(streamBase),
          _rmwBase(rmwBase),
          _sharedBase(sharedBase),
          _streamBytes(streamBytes)
    {}

    std::string name() const override { return "coherence_mix"; }

    bool
    step(cpu::Proc &proc) override
    {
        constexpr std::uint64_t kBlock = 4096;
        constexpr std::uint64_t kLine = 64;
        proc.loadSeq(_streamBase + _pos, kBlock);
        _bytes += kBlock;
        for (unsigned i = 0; i < 8; ++i) {
            proc.load(_rmwBase + _rmwPos);
            proc.store(_rmwBase + _rmwPos);
            _rmwPos += kLine;
            _bytes += kLine;
        }
        proc.load(_sharedBase + (_pos % kBlock));
        _bytes += kLine;
        proc.instr(kBlock / 8);
        _pos += kBlock;
        return _pos < _streamBytes;
    }

    std::uint64_t bytesDone() const { return _bytes; }

  private:
    Addr _streamBase;
    Addr _rmwBase;
    Addr _sharedBase;
    std::uint64_t _streamBytes;
    std::uint64_t _pos = 0;
    std::uint64_t _rmwPos = 0;
    std::uint64_t _bytes = 0;
};

struct MatrixPoint
{
    unsigned cpus = 0;
    mem::TransportKind transport = mem::TransportKind::Snoop;
    mem::CoherenceKind coherence = mem::CoherenceKind::Mesi;
    double mbps = 0.0;
    double addrOcc = 0.0; //!< Fraction of time the address phase was held.
    double dirOcc = 0.0; //!< Mean per-bank directory occupancy fraction.
    double upgrades = 0.0; //!< Bus ownership upgrades (MSI's E tax).
    double probes = 0.0;
    double targetedInvals = 0.0;

    /** Serialized coherence work: address phase or directory banks. */
    double cohOcc() const { return addrOcc + dirOcc; }
};

MatrixPoint
runPoint(unsigned cpus, mem::TransportKind transport,
         mem::CoherenceKind coherence)
{
    node::NodeParams cfg =
        machines::powerMannaAblation(cpus, coherence, transport);
    // The "designed node" of ablation_node_scaling: memory interleave
    // and data-path width scale with the processor count, so the
    // coherence phase — not DRAM — is what binds at 8 processors.
    cfg.dram.banks = 16;
    cfg.bus.dataWidthBytes = 32;

    node::Node node(cfg);
    node.reset();

    const std::uint64_t streamBytes = 2ull * 1024 * 1024;
    std::vector<std::unique_ptr<CoherenceMix>> works;
    std::vector<cpu::Job> jobs;
    for (unsigned c = 0; c < cpus; ++c) {
        // Disjoint stream and RMW regions per processor; one shared
        // read-only block for all of them.
        works.push_back(std::make_unique<CoherenceMix>(
            0x1000'0000 + Addr(c) * 0x0084'3000,
            0x4000'0000 + Addr(c) * 0x0010'1000, 0x7000'0000,
            streamBytes));
        jobs.push_back(cpu::Job{&node.proc(c), works.back().get()});
    }
    cpu::runJobs(jobs);

    MatrixPoint pt;
    pt.cpus = cpus;
    pt.transport = transport;
    pt.coherence = coherence;
    Tick elapsed = 0;
    std::uint64_t bytes = 0;
    for (unsigned c = 0; c < cpus; ++c) {
        elapsed = std::max(elapsed, node.proc(c).time());
        bytes += works[c]->bytesDone();
        pt.upgrades += node.proc(c).busUpgrades.value();
    }
    pt.mbps = static_cast<double>(bytes) / ticksToUs(elapsed);
    const double span = static_cast<double>(elapsed);
    pt.addrOcc = node.bus().addrBusyTicks.value() / span;
    pt.dirOcc = node.bus().dirBusyTicks.value() /
                (span * cfg.bus.dirBanks);
    pt.probes = node.bus().snoopProbes.value();
    pt.targetedInvals = node.bus().targetedInvals.value();
    return pt;
}

} // namespace

int
main()
{
    pm::setInformEnabled(false);
    using namespace pm;

    // ---- Anchors on the default policies. ----
    std::printf("== ablation_coherence: anchor guard (default MESI/LRU/"
                "snoop) ==\n");
    const Anchors a = measureAnchors();
    std::printf("  fig9 %.3f us, fig11 %.1f MB/s, fig12 %.1f MB/s\n",
                a.latUs, a.uniMBps, a.biMBps);
    const auto off = [](double v, double paper) {
        return v < paper * 0.99 || v > paper * 1.01;
    };
    if (off(a.latUs, 2.746) || off(a.uniMBps, 59.9) ||
        off(a.biMBps, 85.7)) {
        std::fprintf(stderr,
                     "ablation_coherence: anchors off the paper values "
                     "(2.746 / 59.9 / 85.7)\n");
        return 1;
    }

    // ---- The 2/4/8 x transport x protocol matrix. ----
    std::printf("\n== policy matrix: coherence mix on the designed "
                "node ==\n");
    std::printf("%5s %6s %5s %9s %9s %8s %9s %8s\n", "cpus", "transp",
                "proto", "MB/s", "addr occ", "dir occ", "upgrades",
                "probes");
    std::vector<MatrixPoint> points;
    for (const unsigned cpus : {2u, 4u, 8u}) {
        for (const mem::TransportKind tr :
             {mem::TransportKind::Snoop, mem::TransportKind::Directory}) {
            for (const mem::CoherenceKind coh :
                 {mem::CoherenceKind::Mesi, mem::CoherenceKind::Msi}) {
                points.push_back(runPoint(cpus, tr, coh));
                const MatrixPoint &p = points.back();
                std::printf("%5u %6s %5s %9.0f %8.0f%% %7.0f%% %9.0f "
                            "%8.0f\n",
                            p.cpus, mem::transportName(p.transport),
                            mem::coherenceName(p.coherence), p.mbps,
                            100.0 * p.addrOcc, 100.0 * p.dirOcc,
                            p.upgrades, p.probes);
            }
        }
    }

    // ---- The claims the matrix must support. ----
    const auto find = [&points](unsigned cpus, mem::TransportKind tr,
                                mem::CoherenceKind coh) {
        for (const MatrixPoint &p : points)
            if (p.cpus == cpus && p.transport == tr &&
                p.coherence == coh)
                return p;
        pm_fatal("ablation_coherence: matrix point missing");
    };
    int rc = 0;
    for (const unsigned cpus : {4u, 8u}) {
        const MatrixPoint snoop =
            find(cpus, mem::TransportKind::Snoop,
                 mem::CoherenceKind::Mesi);
        const MatrixPoint dir = find(
            cpus, mem::TransportKind::Directory, mem::CoherenceKind::Mesi);
        if (dir.cohOcc() >= snoop.cohOcc()) {
            std::fprintf(stderr,
                         "ablation_coherence: directory did not reduce "
                         "coherence occupancy at %u cpus (%.2f vs "
                         "%.2f)\n",
                         cpus, dir.cohOcc(), snoop.cohOcc());
            rc = 1;
        }
    }
    const MatrixPoint mesi2 = find(2, mem::TransportKind::Snoop,
                                   mem::CoherenceKind::Mesi);
    const MatrixPoint msi2 =
        find(2, mem::TransportKind::Snoop, mem::CoherenceKind::Msi);
    if (msi2.upgrades <= mesi2.upgrades) {
        std::fprintf(stderr,
                     "ablation_coherence: MSI did not pay for the "
                     "missing E state (upgrades %.0f vs %.0f)\n",
                     msi2.upgrades, mesi2.upgrades);
        rc = 1;
    }
    std::printf("\npaper check: the snooped address phase saturates "
                "toward 8 CPUs ('the sequentialization of the address "
                "phases'); the sparse directory's banked targeted "
                "probes keep coherence occupancy low, and MSI pays a "
                "bus upgrade for every store MESI's E state made "
                "silent\n");

    // ---- BENCH_coherence.json for the CI artifact. ----
    FILE *json = std::fopen("BENCH_coherence.json", "w");
    if (json == nullptr) {
        std::fprintf(stderr, "ablation_coherence: cannot write "
                             "BENCH_coherence.json\n");
        return 1;
    }
    std::fprintf(json,
                 "{\n"
                 "  \"anchors\": {\n"
                 "    \"fig9_latency_us\": %.3f,\n"
                 "    \"fig11_unidir_mbps\": %.1f,\n"
                 "    \"fig12_bidir_mbps\": %.1f\n"
                 "  },\n"
                 "  \"matrix\": [\n",
                 a.latUs, a.uniMBps, a.biMBps);
    for (std::size_t i = 0; i < points.size(); ++i) {
        const MatrixPoint &p = points[i];
        std::fprintf(json,
                     "    {\"cpus\": %u, \"transport\": \"%s\", "
                     "\"coherence\": \"%s\", \"mbps\": %.1f, "
                     "\"addr_occupancy\": %.4f, "
                     "\"dir_occupancy\": %.4f, \"bus_upgrades\": %.0f, "
                     "\"snoop_probes\": %.0f, "
                     "\"targeted_invals\": %.0f}%s\n",
                     p.cpus, mem::transportName(p.transport),
                     mem::coherenceName(p.coherence), p.mbps, p.addrOcc,
                     p.dirOcc, p.upgrades, p.probes, p.targetedInvals,
                     i + 1 < points.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("  wrote BENCH_coherence.json\n");
    return rc;
}
