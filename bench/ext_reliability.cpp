/**
 * @file
 * Extension bench: reliable delivery under injected faults.
 *
 * Sweeps the per-bit error rate of every link in a two-node system
 * and reports effective goodput plus the recovery work (retransmits,
 * CRC drops, NACKs) the go-back-N driver performed to keep delivery
 * exactly-once. The first row (BER 0) doubles as the zero-fault
 * overhead check: its Figure 9 latency and Figure 11 bandwidth must
 * match the fault-free paper anchors (2.75 us, 59.9 MB/s) — the
 * reliability protocol rides in the existing header word and costs
 * nothing when nothing goes wrong.
 */

#include <cstdio>

#include "machines/machines.hh"
#include "msg/probes.hh"
#include "msg/system.hh"
#include "sim/fault.hh"
#include "sim/logging.hh"

namespace {

using namespace pm;

msg::SystemParams
baseParams()
{
    msg::SystemParams sp;
    sp.node = machines::powerManna();
    sp.fabric.clusters = 1;
    sp.fabric.nodesPerCluster = 2;
    return sp;
}

void
sweepBer()
{
    std::printf("\n-- goodput vs bit-error rate (1024 x 256 B, "
                "exactly-once delivery) --\n");
    std::printf("%10s %12s %10s %10s %10s %10s %8s\n", "BER",
                "goodput MB/s", "retrans", "crcdrop", "nack", "timeout",
                "intact");

    for (double ber : {0.0, 1e-7, 1e-6, 1e-5, 1e-4, 5e-4}) {
        sim::FaultModel fault(2024);
        fault.defaults.ber = ber;
        msg::SystemParams sp = baseParams();
        if (fault.anyConfigured())
            sp.fabric.fault = &fault;
        msg::System sys(sp);

        const unsigned count = 1024;
        const std::uint64_t bytes = 256;
        const auto r = msg::runDeliverySoak(sys, 0, 1, bytes, count);
        const double goodput =
            r.elapsedUs > 0.0 ? double(bytes) * r.delivered / r.elapsedUs
                              : 0.0;
        std::printf("%10.0e %12.1f %10.0f %10.0f %10.0f %10.0f %8s\n",
                    ber, goodput, r.retransmits, r.crcDrops, r.nacksSent,
                    r.timeouts, r.intact ? "yes" : "NO");
        if (!r.intact)
            pm_panic("reliability bench: delivery contract violated at "
                     "BER %g",
                     ber);
    }
}

void
zeroFaultOverhead()
{
    std::printf("\n-- zero-fault overhead vs paper anchors --\n");
    msg::System sys(baseParams());
    const double lat = msg::measureOneWayLatencyUs(sys, 0, 1, 8);
    const double bw = msg::measureUnidirectionalMBps(sys, 0, 1, 16384);
    std::printf("fig9  8 B latency : %.3f us (paper 2.75, budget +-1%%)\n",
                lat);
    std::printf("fig11 peak bw     : %.1f MB/s (paper 59.9, budget "
                "+-1%%)\n",
                bw);
    if (lat < 2.75 * 0.99 || lat > 2.75 * 1.01 || bw < 59.9 * 0.99 ||
        bw > 59.9 * 1.01)
        pm_panic("reliability protocol perturbed the fault-free "
                 "anchors");

    // Same anchors with the health watchdog scanning: the monitor is
    // read-only, so an enabled watchdog must not move either number.
    msg::System watched(baseParams());
    watched.health().enableWatchdog(5 * kTicksPerUs,
                                    1000 * kTicksPerUs);
    const double latW = msg::measureOneWayLatencyUs(watched, 0, 1, 8);
    const double bwW = msg::measureUnidirectionalMBps(watched, 0, 1, 16384);
    std::printf("      with watchdog: %.3f us, %.1f MB/s (%.0f scans)\n",
                latW, bwW, watched.health().scans());
    if (latW != lat || bwW != bw)
        pm_panic("enabled watchdog perturbed the fault-free anchors "
                 "(%.3f vs %.3f us, %.1f vs %.1f MB/s)",
                 latW, lat, bwW, bw);
}

} // namespace

int
main()
{
    pm::setInformEnabled(false);
    zeroFaultOverhead();
    sweepBer();
    return 0;
}
