/**
 * @file
 * Extension bench: reliable delivery under injected faults.
 *
 * Sweeps the per-bit error rate of every link in a two-node system
 * and reports effective goodput plus the recovery work (retransmits,
 * CRC drops, NACKs) the go-back-N driver performed to keep delivery
 * exactly-once. The first row (BER 0) doubles as the zero-fault
 * overhead check: its Figure 9 latency and Figure 11 bandwidth must
 * match the fault-free paper anchors (2.75 us, 59.9 MB/s) — the
 * reliability protocol rides in the existing header word and costs
 * nothing when nothing goes wrong.
 *
 * All measurement points — the two anchor machines and the six BER
 * soaks — go through pm::sim::sweep as one work list; `--jobs N`
 * fans them out over N threads with byte-identical output (the BER
 * soaks dominate the wall clock, so this bench is also the CI
 * speedup check for the harness).
 *
 * The BER soaks run on a two-cluster machine and honour
 * `--kernel-threads N`: the partitioned event kernel must reproduce
 * the classic kernel's sweep byte-for-byte at any N, faults and all.
 * The anchor rows stay on the single-cluster machine that defines the
 * paper numbers. Results also land in BENCH_reliability.json as a CI
 * artifact.
 */

#include <cstdio>
#include <vector>

#include "machines/machines.hh"
#include "msg/probes.hh"
#include "msg/system.hh"
#include "sim/fault.hh"
#include "sim/logging.hh"
#include "sweep_support.hh"

namespace {

using namespace pm;

msg::SystemParams
baseParams()
{
    msg::SystemParams sp;
    sp.node = machines::powerManna();
    sp.fabric.clusters = 1;
    sp.fabric.nodesPerCluster = 2;
    return sp;
}

/** The BER soak machine: two clusters, so the partitioned kernel has
 *  real boundaries to cross and `--kernel-threads` means something. */
msg::SystemParams
soakParams(unsigned kernelThreads)
{
    msg::SystemParams sp;
    sp.node = machines::powerManna();
    sp.fabric = machines::powerMannaFabric(2, 2);
    sp.kernelThreads = kernelThreads;
    return sp;
}

// Top of the sweep is tuned to the two-cluster soak path: a word
// crosses ~4 fault sites each way, so frame-loss compounds per hop
// and 2e-4 already costs several transmissions per message. Beyond
// that the go-back-N window stops outrunning the loss rate and the
// retry budget (rightly) declares the link dead — a different bench.
const std::vector<double> kBers{0.0, 1e-7, 1e-6, 1e-5, 1e-4, 2e-4};

/** What one sweep point measured (fields per point kind). */
struct PointResult
{
    // Anchor points.
    double lat = 0.0;
    double bw = 0.0;
    double scans = 0.0;
    // BER soak points.
    double goodput = 0.0;
    double retransmits = 0.0;
    double crcDrops = 0.0;
    double nacksSent = 0.0;
    double timeouts = 0.0;
    bool intact = true;
};

/** Work list: [0] fault-free anchors, [1] watchdogged anchors,
 *  [2..] one soak per kBers entry. */
constexpr std::size_t kAnchorPlain = 0;
constexpr std::size_t kAnchorWatchdog = 1;
constexpr std::size_t kFirstBer = 2;

PointResult
runPoint(std::size_t index, unsigned kernelThreads)
{
    PointResult res;
    if (index == kAnchorPlain || index == kAnchorWatchdog) {
        msg::System sys(baseParams());
        if (index == kAnchorWatchdog)
            sys.health().enableWatchdog(5 * kTicksPerUs,
                                        1000 * kTicksPerUs);
        res.lat = msg::measureOneWayLatencyUs(sys, 0, 1, 8);
        res.bw = msg::measureUnidirectionalMBps(sys, 0, 1, 16384);
        res.scans = sys.health().scans();
        return res;
    }

    const double ber = kBers[index - kFirstBer];
    sim::FaultModel fault(2024);
    fault.defaults.ber = ber;
    msg::SystemParams sp = soakParams(kernelThreads);
    if (fault.anyConfigured())
        sp.fabric.fault = &fault;
    msg::System sys(sp);

    const unsigned count = 1024;
    const std::uint64_t bytes = 256;
    const auto r = msg::runDeliverySoak(sys, 0, 2, bytes, count);
    res.goodput = r.elapsedUs > 0.0
                      ? double(bytes) * r.delivered / r.elapsedUs
                      : 0.0;
    res.retransmits = r.retransmits;
    res.crcDrops = r.crcDrops;
    res.nacksSent = r.nacksSent;
    res.timeouts = r.timeouts;
    res.intact = r.intact;
    return res;
}

} // namespace

int
main(int argc, char **argv)
{
    pm::setInformEnabled(false);
    const unsigned kernelThreads =
        benchsup::kernelThreadsFromArgv(argc, argv);

    const auto report = sim::sweep::run(
        kFirstBer + kBers.size(),
        [kernelThreads](const sim::sweep::Point &pt) {
            return runPoint(pt.index, kernelThreads);
        },
        benchsup::options(argc, argv));
    if (const int rc = benchsup::checkFailures(report))
        return rc;

    std::printf("\n-- zero-fault overhead vs paper anchors --\n");
    const PointResult &plain = report.results[kAnchorPlain];
    std::printf("fig9  8 B latency : %.3f us (paper 2.75, budget +-1%%)\n",
                plain.lat);
    std::printf("fig11 peak bw     : %.1f MB/s (paper 59.9, budget "
                "+-1%%)\n",
                plain.bw);
    if (plain.lat < 2.75 * 0.99 || plain.lat > 2.75 * 1.01 ||
        plain.bw < 59.9 * 0.99 || plain.bw > 59.9 * 1.01)
        pm_panic("reliability protocol perturbed the fault-free "
                 "anchors");

    // Same anchors with the health watchdog scanning: the monitor is
    // read-only, so an enabled watchdog must not move either number.
    const PointResult &watched = report.results[kAnchorWatchdog];
    std::printf("      with watchdog: %.3f us, %.1f MB/s (%.0f scans)\n",
                watched.lat, watched.bw, watched.scans);
    if (watched.lat != plain.lat || watched.bw != plain.bw)
        pm_panic("enabled watchdog perturbed the fault-free anchors "
                 "(%.3f vs %.3f us, %.1f vs %.1f MB/s)",
                 watched.lat, plain.lat, watched.bw, plain.bw);

    std::printf("\n-- goodput vs bit-error rate (1024 x 256 B, "
                "exactly-once delivery) --\n");
    std::printf("%10s %12s %10s %10s %10s %10s %8s\n", "BER",
                "goodput MB/s", "retrans", "crcdrop", "nack", "timeout",
                "intact");
    for (std::size_t i = 0; i < kBers.size(); ++i) {
        const PointResult &r = report.results[kFirstBer + i];
        std::printf("%10.0e %12.1f %10.0f %10.0f %10.0f %10.0f %8s\n",
                    kBers[i], r.goodput, r.retransmits, r.crcDrops,
                    r.nacksSent, r.timeouts, r.intact ? "yes" : "NO");
        if (!r.intact)
            pm_panic("reliability bench: delivery contract violated at "
                     "BER %g",
                     kBers[i]);
    }

    // ---- BENCH_reliability.json for the CI artifact. ----
    FILE *json = std::fopen("BENCH_reliability.json", "w");
    if (json == nullptr) {
        std::fprintf(stderr, "ext_reliability: cannot write "
                             "BENCH_reliability.json\n");
        return 1;
    }
    std::fprintf(json,
                 "{\n"
                 "  \"anchors\": {\n"
                 "    \"fig9_latency_us\": %.3f,\n"
                 "    \"fig11_unidir_mbps\": %.1f\n"
                 "  },\n"
                 "  \"kernel_threads\": %u,\n"
                 "  \"ber_sweep\": [\n",
                 plain.lat, plain.bw, kernelThreads);
    for (std::size_t i = 0; i < kBers.size(); ++i) {
        const PointResult &r = report.results[kFirstBer + i];
        std::fprintf(json,
                     "    {\"ber\": %.1e, \"goodput_mbps\": %.1f, "
                     "\"retransmits\": %.0f, \"crc_drops\": %.0f, "
                     "\"nacks\": %.0f, \"timeouts\": %.0f}%s\n",
                     kBers[i], r.goodput, r.retransmits, r.crcDrops,
                     r.nacksSent, r.timeouts,
                     i + 1 < kBers.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("\nwrote BENCH_reliability.json\n");
    return 0;
}
