/**
 * @file
 * Figure 10: message-sending time at the network saturation point —
 * the LogP gap — over message size, for PowerMANNA (measured) and the
 * BIP/FM baselines (models calibrated to [9]).
 *
 * At saturation the sender streams back-to-back messages; the gap is
 * the steady-state time consumed per message. For PowerMANNA short
 * messages it is dominated by the PIO sends and route setup; for long
 * messages it converges to wire occupancy at 60 MB/s.
 *
 * Each message size is one pm::sim::sweep point with a System of its
 * own; `--jobs N` runs the points on N threads, byte-identically.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "baseline/usercomm.hh"
#include "machines/machines.hh"
#include "msg/probes.hh"
#include "msg/system.hh"
#include "sim/logging.hh"
#include "sweep_support.hh"

int
main(int argc, char **argv)
{
    pm::setInformEnabled(false);
    using namespace pm;

    const std::vector<unsigned> sizes{4u,   8u,   16u,  32u,   64u,  128u,
                                      256u, 512u, 1024u, 2048u, 4096u};

    std::printf("== Figure 10: message-sending time at saturation (us) "
                "==\n");
    std::printf("%8s %12s %12s %12s\n", "bytes", "powermanna", "bip",
                "fm");
    const auto report = sim::sweep::map(
        sizes,
        [](unsigned bytes, const sim::sweep::Point &) {
            msg::SystemParams sp;
            sp.node = machines::powerManna();
            sp.fabric.clusters = 1;
            sp.fabric.nodesPerCluster = 8;
            msg::System sys(sp);
            const auto bip = baseline::UserLevelCommModel::bip();
            const auto fm = baseline::UserLevelCommModel::fm();
            const double pmUs = msg::measureGapUs(sys, 0, 1, bytes, 32);
            std::string row;
            benchsup::appendf(row, "%8u %12.2f %12.2f %12.2f\n", bytes,
                              pmUs, bip.gapUs(bytes), fm.gapUs(bytes));
            return row;
        },
        benchsup::options(argc, argv));
    return benchsup::emitRows(report);
}
