/**
 * @file
 * Figure 10: message-sending time at the network saturation point —
 * the LogP gap — over message size, for PowerMANNA (measured) and the
 * BIP/FM baselines (models calibrated to [9]).
 *
 * At saturation the sender streams back-to-back messages; the gap is
 * the steady-state time consumed per message. For PowerMANNA short
 * messages it is dominated by the PIO sends and route setup; for long
 * messages it converges to wire occupancy at 60 MB/s.
 */

#include <cstdio>

#include "baseline/usercomm.hh"
#include "machines/machines.hh"
#include "msg/probes.hh"
#include "sim/logging.hh"

int
main()
{
    pm::setInformEnabled(false);
    using namespace pm;

    msg::SystemParams sp;
    sp.node = machines::powerManna();
    sp.fabric.clusters = 1;
    sp.fabric.nodesPerCluster = 8;
    msg::System sys(sp);

    const auto bip = baseline::UserLevelCommModel::bip();
    const auto fm = baseline::UserLevelCommModel::fm();

    std::printf("== Figure 10: message-sending time at saturation (us) "
                "==\n");
    std::printf("%8s %12s %12s %12s\n", "bytes", "powermanna", "bip",
                "fm");
    for (unsigned bytes :
         {4u, 8u, 16u, 32u, 64u, 128u, 256u, 512u, 1024u, 2048u, 4096u}) {
        const double pmUs = msg::measureGapUs(sys, 0, 1, bytes, 32);
        std::printf("%8u %12.2f %12.2f %12.2f\n", bytes, pmUs,
                    bip.gapUs(bytes), fm.gapUs(bytes));
    }
    return 0;
}
