/**
 * @file
 * Table 1: configuration of the three test systems, printed from the
 * machine models actually used by every other bench — so the table is
 * generated from the same single source of truth as the experiments.
 */

#include <cstdio>

#include "machines/machines.hh"
#include "sim/logging.hh"

int
main()
{
    pm::setInformEnabled(false);
    using namespace pm;

    const auto configs = machines::allNodeConfigs();

    std::printf("== Table 1: configuration of test systems ==\n");
    std::printf("%-18s", "System Type");
    for (const auto &c : configs)
        std::printf(" %14s", c.name.c_str());
    std::printf("\n");

    auto row = [&](const char *label, auto field) {
        std::printf("%-18s", label);
        for (const auto &c : configs)
            std::printf(" %14s", field(c).c_str());
        std::printf("\n");
    };

    auto fmt = [](const char *f, auto... v) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), f, v...);
        return std::string(buf);
    };

    row("Processor Type", [&](const node::NodeParams &c) {
        return c.cpu.name;
    });
    row("Processor Clock", [&](const node::NodeParams &c) {
        return fmt("%.0f MHz", c.cpu.clockMhz);
    });
    row("Bus Clock", [&](const node::NodeParams &c) {
        return fmt("%.0f MHz", c.bus.clockMhz);
    });
    row("Processors", [&](const node::NodeParams &c) {
        return fmt("%u", c.numCpus);
    });
    row("Primary Cache", [&](const node::NodeParams &c) {
        return fmt("%u Kbyte", c.l1.sizeBytes / 1024);
    });
    row("Secondary Cache", [&](const node::NodeParams &c) {
        return fmt("%u Kbyte", c.l2.sizeBytes / 1024);
    });
    row("Cache line", [&](const node::NodeParams &c) {
        return fmt("%u byte", c.l1.lineSize);
    });
    row("Memory bandwidth", [&](const node::NodeParams &c) {
        return fmt("%.0f MB/s", c.dram.aggregateMBps());
    });
    row("Split transact.", [&](const node::NodeParams &c) {
        return std::string(c.bus.splitTransactions ? "yes" : "no");
    });
    row("P2P data paths", [&](const node::NodeParams &c) {
        return std::string(c.bus.pointToPointData ? "yes" : "no");
    });

    std::printf("\n");
    for (const auto &c : configs)
        std::printf("%s\n", machines::describe(c).c_str());
    return 0;
}
