/**
 * @file
 * Figure 7: single-processor MatMult MFLOPS over matrix size, odd
 * strides — (a) naive version, (b) transposed version — for the
 * PowerMANNA node, the SUN ULTRA-I and the clocked-down Pentium II PC.
 *
 * Paper shape to reproduce:
 *  - transposed >> naive on every machine;
 *  - PowerMANNA clearly best in the transposed version (2 MB L2 and
 *    64-byte-line prefetch fully effective);
 *  - in the naive version PowerMANNA degrades most (factor ~2.5 at
 *    small sizes, ~6 at large sizes vs its own transposed run), the
 *    PC performing best at large sizes.
 */

#include <cstdio>
#include <vector>

#include "machines/machines.hh"
#include "node/node.hh"
#include "sim/logging.hh"
#include "workloads/runner.hh"

namespace {

constexpr unsigned kSampledRows = 24;

const std::vector<unsigned> kSizes{48, 64, 96, 128, 192, 256, 384, 512, 768};

} // namespace

int
main()
{
    pm::setInformEnabled(false);
    using namespace pm;

    std::vector<node::NodeParams> configs{machines::powerManna(),
                                          machines::sunUltra1(),
                                          machines::pentiumPc180()};

    for (bool transposed : {false, true}) {
        std::printf("\n== Figure 7%s: MatMult %s version, 1 CPU, MFLOPS "
                    "==\n",
                    transposed ? "b" : "a",
                    transposed ? "transposed" : "naive");
        std::printf("%8s", "n");
        for (const auto &c : configs)
            std::printf(" %14s", c.name.c_str());
        std::printf("\n");

        for (unsigned n : kSizes) {
            std::printf("%8u", n);
            for (const auto &cfg : configs) {
                node::Node node(cfg);
                auto r = workloads::runMatMult(node, n, transposed, 1,
                                               kSampledRows);
                std::printf(" %14.1f", r.mflops());
            }
            std::printf("\n");
        }
    }

    std::printf("\npaper check: naive/transposed ratio for PowerMANNA "
                "(expect ~2.5 small, ~6 large)\n");
    {
        node::Node node(machines::powerManna());
        for (unsigned n : {64u, 768u}) {
            auto a = workloads::runMatMult(node, n, false, 1, kSampledRows);
            auto b = workloads::runMatMult(node, n, true, 1, kSampledRows);
            std::printf("  n=%4u  ratio=%.2f\n", n,
                        b.mflops() / a.mflops());
        }
    }
    return 0;
}
