/**
 * @file
 * Ablation/verification for the link-protocol claims of Section 3.2:
 * 60 MB/s per direction per link, 120 MB/s full duplex, and 240 MB/s
 * total node bandwidth when both links of the duplicated network are
 * used for application traffic (the paper's planned "future work"
 * driver, here driven by both processors of the SMP node — one per
 * link interface, which is exactly the configuration the two-way node
 * enables).
 *
 * The four configurations are pm::sim::sweep points with Systems of
 * their own; `--jobs N` runs them on N threads, byte-identically.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "machines/machines.hh"
#include "msg/probes.hh"
#include "sim/logging.hh"
#include "sweep_support.hh"

namespace {

using namespace pm;

/** Aggregate MB/s with `links` interfaces streaming a->b, one CPU per
 *  link. */
double
multiLinkStream(unsigned links, unsigned bytes, unsigned count,
                bool bidirectional)
{
    msg::SystemParams sp;
    sp.node = machines::powerManna();
    sp.fabric.clusters = 1;
    sp.fabric.nodesPerCluster = 2;
    sp.fabric.networks = 2;
    msg::System sys(sp);
    sys.resetForRun();

    std::vector<std::unique_ptr<msg::PmComm>> ends;
    unsigned received = 0;
    unsigned expected = 0;
    const Tick start = sys.queue().now();

    for (unsigned l = 0; l < links; ++l) {
        ends.push_back(std::make_unique<msg::PmComm>(sys, 0, l, l));
        ends.push_back(std::make_unique<msg::PmComm>(sys, 1, l, l));
        msg::PmComm &a = *ends[ends.size() - 2];
        msg::PmComm &b = *ends[ends.size() - 1];
        auto payload = msg::makePayload(bytes, l);
        for (unsigned i = 0; i < count; ++i) {
            a.postSend(1, payload);
            b.postRecv([&](std::vector<std::uint64_t>, bool ok) {
                if (!ok)
                    pm_panic("CRC failure");
                ++received;
            });
            ++expected;
            if (bidirectional) {
                b.postSend(0, payload);
                a.postRecv([&](std::vector<std::uint64_t>, bool ok) {
                    if (!ok)
                        pm_panic("CRC failure");
                    ++received;
                });
                ++expected;
            }
        }
    }
    while (received < expected && sys.queue().step()) {
    }
    const double us = ticksToUs(sys.queue().now() - start);
    return double(bytes) * expected / us;
}

struct Config
{
    unsigned links;
    bool bidirectional;
};

} // namespace

int
main(int argc, char **argv)
{
    pm::setInformEnabled(false);

    std::printf("== Ablation: link and duplicated-network bandwidth "
                "(Section 3.2) ==\n");
    constexpr unsigned kBytes = 65536;
    constexpr unsigned kCount = 8;

    const std::vector<Config> configs{
        {1, false}, {1, true}, {2, false}, {2, true}};
    const auto report = sim::sweep::map(
        configs,
        [](const Config &c, const sim::sweep::Point &) {
            return multiLinkStream(c.links, kBytes, kCount,
                                   c.bidirectional);
        },
        benchsup::options(argc, argv));
    if (const int rc = benchsup::checkFailures(report))
        return rc;

    const double oneUni = report.results[0];
    const double oneBi = report.results[1];
    const double twoUni = report.results[2];
    const double twoBi = report.results[3];

    std::printf("%-44s %10.1f MB/s (paper: 60)\n",
                "one link, one direction", oneUni);
    std::printf("%-44s %10.1f MB/s (paper limit: 120; Fig. 12 shows the "
                "FIFO loss)",
                "one link, full duplex (1 CPU drives both)", oneBi);
    std::printf("\n%-44s %10.1f MB/s (paper: 120)\n",
                "both links, one direction (2 CPUs)", twoUni);
    std::printf("%-44s %10.1f MB/s (paper: 240 wire capacity)\n",
                "both links, full duplex (2 CPUs)", twoBi);
    return 0;
}
