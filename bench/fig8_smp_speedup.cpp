/**
 * @file
 * Figure 8: dual-processor MatMult speedup (naive and transposed) on
 * the three nodes.
 *
 * Paper shape to reproduce:
 *  - PowerMANNA: speedup "exactly doubles" (~2.0) — split transactions
 *    plus the point-to-point ADSP data paths leave no memory-access
 *    contention;
 *  - SUN: ~1.9 (about 5% loss) for nontrivial matrices;
 *  - Pentium PC: ~1.7 naive / ~1.6 transposed (15/20% loss) — the
 *    circuit-switched front-side bus serializes whole transactions.
 */

#include <cstdio>
#include <vector>

#include "machines/machines.hh"
#include "node/node.hh"
#include "sim/logging.hh"
#include "workloads/runner.hh"

namespace {

constexpr unsigned kSampledRows = 24;

const std::vector<unsigned> kSizes{64, 128, 256, 384, 512};

} // namespace

int
main()
{
    pm::setInformEnabled(false);
    using namespace pm;

    std::vector<node::NodeParams> configs{machines::powerManna(),
                                          machines::sunUltra1(),
                                          machines::pentiumPc180()};

    for (bool transposed : {false, true}) {
        std::printf("\n== Figure 8%s: dual-processor speedup, MatMult %s "
                    "==\n",
                    transposed ? "b" : "a",
                    transposed ? "transposed" : "naive");
        std::printf("%8s", "n");
        for (const auto &c : configs)
            std::printf(" %14s", c.name.c_str());
        std::printf("\n");

        for (unsigned n : kSizes) {
            std::printf("%8u", n);
            for (const auto &cfg : configs) {
                node::Node node(cfg);
                auto r1 = workloads::runMatMult(node, n, transposed, 1,
                                                kSampledRows);
                auto r2 = workloads::runMatMult(node, n, transposed, 2,
                                                kSampledRows,
                                                /*independentCopies=*/true);
                // Both processors run a full MatMult each (the paper's
                // protocol): throughput speedup is aggregate MFLOPS
                // over single-processor MFLOPS.
                const double speedup = r1.mflops() != 0.0
                    ? r2.mflops() / r1.mflops()
                    : 0.0;
                std::printf(" %14.2f", speedup);
            }
            std::printf("\n");
        }
    }
    return 0;
}
